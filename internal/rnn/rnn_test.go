package rnn

import (
	"math"
	"math/rand"
	"testing"

	"darnet/internal/nn"
	"darnet/internal/tensor"
)

// cellLoss runs the cell forward and reduces with fixed weights.
func cellLoss(t *testing.T, c *LSTMCell, x *tensor.Tensor) float64 {
	t.Helper()
	y, _, err := c.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	loss := 0.0
	for i, v := range y.Data() {
		loss += v * (math.Sin(float64(i)*0.9) + 1.2)
	}
	return loss
}

func TestLSTMCellGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewLSTMCell("cell", rng, 3, 4)
	x := tensor.Randn(rng, 0.8, 5, 3) // T=5, D=3

	for _, p := range c.Params() {
		p.ZeroGrad()
	}
	y, cache, err := c.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	grad := tensor.New(y.Shape()...)
	for i := range grad.Data() {
		grad.Data()[i] = math.Sin(float64(i)*0.9) + 1.2
	}
	dx, err := c.Backward(cache, grad)
	if err != nil {
		t.Fatal(err)
	}

	const h = 1e-6
	const tol = 1e-4
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + h
		up := cellLoss(t, c, x)
		x.Data()[i] = orig - h
		down := cellLoss(t, c, x)
		x.Data()[i] = orig
		num := (up - down) / (2 * h)
		if d := math.Abs(num - dx.Data()[i]); d > tol*(1+math.Abs(num)) {
			t.Fatalf("dx[%d]: analytic %g vs numeric %g", i, dx.Data()[i], num)
		}
	}
	for _, p := range c.Params() {
		for i := range p.Value.Data() {
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + h
			up := cellLoss(t, c, x)
			p.Value.Data()[i] = orig - h
			down := cellLoss(t, c, x)
			p.Value.Data()[i] = orig
			num := (up - down) / (2 * h)
			if d := math.Abs(num - p.Grad.Data()[i]); d > tol*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %g vs numeric %g", p.Name, i, p.Grad.Data()[i], num)
			}
		}
	}
}

func TestBiLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := NewBiLSTM("bi", rng, 2, 3)
	x := tensor.Randn(rng, 0.8, 4, 2)

	loss := func() float64 {
		y, _, err := b.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for i, v := range y.Data() {
			s += v * (math.Cos(float64(i)*0.5) + 1.3)
		}
		return s
	}

	for _, p := range b.Params() {
		p.ZeroGrad()
	}
	y, cache, err := b.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	grad := tensor.New(y.Shape()...)
	for i := range grad.Data() {
		grad.Data()[i] = math.Cos(float64(i)*0.5) + 1.3
	}
	dx, err := b.Backward(cache, grad)
	if err != nil {
		t.Fatal(err)
	}

	const h = 1e-6
	const tol = 1e-4
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + h
		up := loss()
		x.Data()[i] = orig - h
		down := loss()
		x.Data()[i] = orig
		num := (up - down) / (2 * h)
		if d := math.Abs(num - dx.Data()[i]); d > tol*(1+math.Abs(num)) {
			t.Fatalf("dx[%d]: analytic %g vs numeric %g", i, dx.Data()[i], num)
		}
	}
	for _, p := range b.Params() {
		for i := range p.Value.Data() {
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + h
			up := loss()
			p.Value.Data()[i] = orig - h
			down := loss()
			p.Value.Data()[i] = orig
			num := (up - down) / (2 * h)
			if d := math.Abs(num - p.Grad.Data()[i]); d > tol*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %g vs numeric %g", p.Name, i, p.Grad.Data()[i], num)
			}
		}
	}
}

func TestLSTMCellShapeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewLSTMCell("cell", rng, 3, 4)
	if _, _, err := c.Forward(tensor.New(5, 2)); err == nil {
		t.Fatal("expected input width error")
	}
	_, cache, err := c.Forward(tensor.New(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Backward(cache, tensor.New(5, 3)); err == nil {
		t.Fatal("expected grad width error")
	}
}

func TestBiLSTMOutWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := NewBiLSTM("bi", rng, 3, 5)
	if b.OutWidth() != 10 {
		t.Fatalf("OutWidth = %d, want 10", b.OutWidth())
	}
	y, _, err := b.Forward(tensor.New(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 7 || y.Dim(1) != 10 {
		t.Fatalf("output shape %v", y.Shape())
	}
}

func TestReverseRows(t *testing.T) {
	x := tensor.MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	r := reverseRows(x)
	if r.At(0, 0) != 5 || r.At(2, 1) != 2 {
		t.Fatalf("reverseRows = %v", r.Data())
	}
	rr := reverseRows(r)
	for i := range x.Data() {
		if rr.Data()[i] != x.Data()[i] {
			t.Fatal("double reverse is not identity")
		}
	}
}

func TestClassifierConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bad := []Config{
		{Input: 0, Hidden: 4, Layers: 1, Classes: 2},
		{Input: 3, Hidden: 0, Layers: 1, Classes: 2},
		{Input: 3, Hidden: 4, Layers: 0, Classes: 2},
		{Input: 3, Hidden: 4, Layers: 1, Classes: 1},
	}
	for i, cfg := range bad {
		if _, err := NewClassifier("c", rng, cfg); err == nil {
			t.Fatalf("case %d: expected config error for %+v", i, cfg)
		}
	}
}

// makeToySequences builds sequences where the class is determined by temporal
// structure (rising, falling, or oscillating signal) — invisible to any
// per-step classifier, so solving it requires recurrence.
func makeToySequences(rng *rand.Rand, n, T int) ([]*tensor.Tensor, []int) {
	seqs := make([]*tensor.Tensor, n)
	labels := make([]int, n)
	for i := range seqs {
		class := rng.Intn(3)
		labels[i] = class
		s := tensor.New(T, 2)
		phase := rng.Float64() * math.Pi
		for t := 0; t < T; t++ {
			ft := float64(t) / float64(T)
			var v float64
			switch class {
			case 0:
				v = ft // rising
			case 1:
				v = 1 - ft // falling
			default:
				v = 0.5 + 0.5*math.Sin(6*ft*math.Pi+phase) // oscillating
			}
			s.Set(v+rng.NormFloat64()*0.05, t, 0)
			s.Set(rng.NormFloat64()*0.05, t, 1)
		}
		seqs[i] = s
	}
	return seqs, labels
}

func TestClassifierLearnsTemporalStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(6))
	seqs, labels := makeToySequences(rng, 150, 20)
	c, err := NewClassifier("rnn", rng, Config{Input: 2, Hidden: 12, Layers: 1, Classes: 3})
	if err != nil {
		t.Fatal(err)
	}
	losses, err := c.Train(nn.NewAdam(0.01), rng, seqs, labels, TrainConfig{Epochs: 15, BatchSize: 8, ClipNorm: 5})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}
	acc, err := c.Evaluate(seqs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("train accuracy = %g, want >= 0.9", acc)
	}
	probs, err := c.PredictProbs(seqs[0])
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum = %g", sum)
	}
}

func TestUnidirectionalClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, err := NewClassifier("uni", rng, Config{Input: 2, Hidden: 6, Layers: 2, Classes: 3, Unidirectional: true})
	if err != nil {
		t.Fatal(err)
	}
	// A unidirectional stack has half the recurrent parameters of a
	// bidirectional one (heads differ too, so compare recurrent widths).
	if got := c.layers[0].OutWidth(); got != 6 {
		t.Fatalf("uni OutWidth = %d, want 6", got)
	}
	seqs, labels := makeToySequences(rng, 30, 10)
	if _, err := c.Train(nn.NewAdam(0.01), rng, seqs, labels, TrainConfig{Epochs: 1, BatchSize: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Evaluate(seqs, labels); err != nil {
		t.Fatal(err)
	}
}

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c, err := NewClassifier("c", rng, Config{Input: 2, Hidden: 4, Layers: 1, Classes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Train(nn.NewSGD(0.1), rng, nil, nil, TrainConfig{}); err == nil {
		t.Fatal("expected empty-set error")
	}
	if _, err := c.Train(nn.NewSGD(0.1), rng, []*tensor.Tensor{tensor.New(3, 2)}, []int{0, 1}, TrainConfig{}); err == nil {
		t.Fatal("expected count mismatch error")
	}
	if _, err := c.Evaluate([]*tensor.Tensor{tensor.New(3, 2)}, nil); err == nil {
		t.Fatal("expected evaluate mismatch error")
	}
}

func TestDeepStackWidthsChain(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c, err := NewClassifier("deep", rng, Config{Input: 4, Hidden: 8, Layers: 2, Classes: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Layer 0: 4 -> 16; layer 1: 16 -> 16; head: 16 -> 5.
	if c.layers[1].(*BiLSTM).In() != 16 {
		t.Fatalf("layer 1 input = %d, want 16", c.layers[1].(*BiLSTM).In())
	}
	logits, err := c.Logits(tensor.New(20, 4))
	if err != nil {
		t.Fatal(err)
	}
	if logits.Dim(1) != 5 {
		t.Fatalf("logits width = %d, want 5", logits.Dim(1))
	}
}

func TestEvaluateConfusion(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c, err := NewClassifier("cm", rng, Config{Input: 2, Hidden: 4, Layers: 1, Classes: 3})
	if err != nil {
		t.Fatal(err)
	}
	seqs, labels := makeToySequences(rng, 12, 8)
	cm, err := c.EvaluateConfusion(seqs, labels, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != 12 {
		t.Fatalf("confusion total = %d", cm.Total())
	}
	if _, err := c.EvaluateConfusion(seqs, labels[:3], []string{"a", "b", "c"}); err == nil {
		t.Fatal("expected alignment error")
	}
	if _, err := c.EvaluateConfusion(seqs, labels, []string{"a"}); err == nil {
		t.Fatal("expected class-name error")
	}
}

// Package bayes implements DarNet's ensemble combiner: one small Bayesian
// Network per class, each with two parent nodes (the CNN's frame prediction
// and the RNN's or SVM's IMU-sequence prediction) and a binary child node
// ("the behaviour is this class"). Conditional probability tables are
// estimated from true-positive counts on training data (paper §4.2,
// "Ensemble Learning"), and at inference time the parents' probability
// distributions are marginalized through the CPTs to score every class.
//
// The two parents may range over different class sets — in DarNet the CNN
// sees all six driving behaviours while the IMU models see only the three
// phone-related ones — which is exactly why a learned combiner is needed
// instead of a naive per-class product.
package bayes

import (
	"fmt"
	"math"
)

// Combiner fuses two categorical predictions into a distribution over
// classes classes, where parent A has arityA outcomes and parent B arityB.
type Combiner struct {
	classes int
	arityA  int
	arityB  int
	// cpt[k][a][b] = P(class = k | parentA = a, parentB = b).
	cpt    [][][]float64
	fitted bool
}

// NewCombiner returns an unfitted combiner.
func NewCombiner(classes, arityA, arityB int) (*Combiner, error) {
	if classes < 2 || arityA < 1 || arityB < 1 {
		return nil, fmt.Errorf("bayes: invalid combiner dims classes=%d arityA=%d arityB=%d", classes, arityA, arityB)
	}
	cpt := make([][][]float64, classes)
	for k := range cpt {
		cpt[k] = make([][]float64, arityA)
		for a := range cpt[k] {
			cpt[k][a] = make([]float64, arityB)
		}
	}
	return &Combiner{classes: classes, arityA: arityA, arityB: arityB, cpt: cpt}, nil
}

// Classes returns the number of output classes.
func (c *Combiner) Classes() int { return c.classes }

// Fit estimates the CPTs from aligned training observations: trueLabels[i] is
// the ground-truth class, predA[i] and predB[i] the parents' hard (arg-max)
// predictions for sample i. smoothing is the additive Laplace pseudo-count
// applied to every (class, a, b) cell; it must be positive so unobserved
// parent combinations yield a uniform rather than undefined conditional.
func (c *Combiner) Fit(trueLabels, predA, predB []int, smoothing float64) error {
	n := len(trueLabels)
	if len(predA) != n || len(predB) != n {
		return fmt.Errorf("bayes: misaligned observations: %d labels, %d predA, %d predB", n, len(predA), len(predB))
	}
	if n == 0 {
		return fmt.Errorf("bayes: cannot fit on zero observations")
	}
	if smoothing <= 0 {
		return fmt.Errorf("bayes: smoothing must be positive, got %g", smoothing)
	}
	counts := make([][][]float64, c.classes)
	for k := range counts {
		counts[k] = make([][]float64, c.arityA)
		for a := range counts[k] {
			counts[k][a] = make([]float64, c.arityB)
			for b := range counts[k][a] {
				counts[k][a][b] = smoothing
			}
		}
	}
	for i := 0; i < n; i++ {
		y, a, b := trueLabels[i], predA[i], predB[i]
		if y < 0 || y >= c.classes {
			return fmt.Errorf("bayes: label %d of sample %d out of range [0,%d)", y, i, c.classes)
		}
		if a < 0 || a >= c.arityA {
			return fmt.Errorf("bayes: parent-A outcome %d of sample %d out of range [0,%d)", a, i, c.arityA)
		}
		if b < 0 || b >= c.arityB {
			return fmt.Errorf("bayes: parent-B outcome %d of sample %d out of range [0,%d)", b, i, c.arityB)
		}
		counts[y][a][b]++
	}
	// Normalize over classes within each (a, b) cell:
	// P(class | a, b) = count(class, a, b) / Σ_k count(k, a, b).
	for a := 0; a < c.arityA; a++ {
		for b := 0; b < c.arityB; b++ {
			total := 0.0
			for k := 0; k < c.classes; k++ {
				total += counts[k][a][b]
			}
			for k := 0; k < c.classes; k++ {
				c.cpt[k][a][b] = counts[k][a][b] / total
			}
		}
	}
	c.fitted = true
	return nil
}

// CPT returns P(class = k | a, b). The combiner must be fitted.
func (c *Combiner) CPT(k, a, b int) float64 { return c.cpt[k][a][b] }

// Combine marginalizes the parents' probability distributions through the
// CPTs and returns a normalized posterior over classes:
//
//	P(class = k) ∝ Σ_a Σ_b pA(a) · pB(b) · P(class = k | a, b).
func (c *Combiner) Combine(pA, pB []float64) ([]float64, error) {
	if !c.fitted {
		return nil, fmt.Errorf("bayes: combiner not fitted")
	}
	if len(pA) != c.arityA {
		return nil, fmt.Errorf("bayes: parent-A distribution has %d entries, want %d", len(pA), c.arityA)
	}
	if len(pB) != c.arityB {
		return nil, fmt.Errorf("bayes: parent-B distribution has %d entries, want %d", len(pB), c.arityB)
	}
	post := make([]float64, c.classes)
	total := 0.0
	for k := 0; k < c.classes; k++ {
		s := 0.0
		for a, pa := range pA {
			if pa == 0 {
				continue
			}
			row := c.cpt[k][a]
			for b, pb := range pB {
				s += pa * pb * row[b]
			}
		}
		post[k] = s
		total += s
	}
	if total <= 0 || math.IsNaN(total) {
		return nil, fmt.Errorf("bayes: degenerate posterior (total %g)", total)
	}
	for k := range post {
		post[k] /= total
	}
	return post, nil
}

// Predict returns the arg-max class of Combine(pA, pB).
func (c *Combiner) Predict(pA, pB []float64) (int, error) {
	post, err := c.Combine(pA, pB)
	if err != nil {
		return 0, err
	}
	best, bi := post[0], 0
	for k, p := range post[1:] {
		if p > best {
			best, bi = p, k+1
		}
	}
	return bi, nil
}

// --- Naive combiners for the ablation bench ---------------------------------

// ClassMap projects the full class space onto parent B's class space; entry k
// is the parent-B outcome corresponding to full class k.
type ClassMap []int

// Validate checks that the mapping covers classes classes and targets arityB.
func (m ClassMap) Validate(classes, arityB int) error {
	if len(m) != classes {
		return fmt.Errorf("bayes: class map has %d entries for %d classes", len(m), classes)
	}
	for k, b := range m {
		if b < 0 || b >= arityB {
			return fmt.Errorf("bayes: class map entry %d targets %d, outside [0,%d)", k, b, arityB)
		}
	}
	return nil
}

// ProductCombine is the naive alternative the BN is ablated against:
// score(k) = pA(k) · pB(map(k)), renormalized.
func ProductCombine(pA, pB []float64, m ClassMap) ([]float64, error) {
	if err := m.Validate(len(pA), len(pB)); err != nil {
		return nil, err
	}
	out := make([]float64, len(pA))
	total := 0.0
	for k := range out {
		out[k] = pA[k] * pB[m[k]]
		total += out[k]
	}
	if total <= 0 {
		// Degenerate overlap: fall back to parent A alone.
		copy(out, pA)
		return out, nil
	}
	for k := range out {
		out[k] /= total
	}
	return out, nil
}

// AverageCombine is the second naive alternative:
// score(k) = (pA(k) + pB(map(k))/|map⁻¹(map(k))|) / 2, renormalized. The
// division spreads parent B's mass evenly over the full classes that share a
// projected outcome.
func AverageCombine(pA, pB []float64, m ClassMap) ([]float64, error) {
	if err := m.Validate(len(pA), len(pB)); err != nil {
		return nil, err
	}
	fan := make([]int, len(pB))
	for _, b := range m {
		fan[b]++
	}
	out := make([]float64, len(pA))
	total := 0.0
	for k := range out {
		out[k] = 0.5*pA[k] + 0.5*pB[m[k]]/float64(fan[m[k]])
		total += out[k]
	}
	for k := range out {
		out[k] /= total
	}
	return out, nil
}

// ArgMax returns the index of the largest probability.
func ArgMax(p []float64) int {
	best, bi := math.Inf(-1), 0
	for i, v := range p {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

package bayes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCombinerValidation(t *testing.T) {
	bad := [][3]int{{1, 2, 2}, {2, 0, 2}, {2, 2, 0}}
	for _, dims := range bad {
		if _, err := NewCombiner(dims[0], dims[1], dims[2]); err == nil {
			t.Fatalf("expected error for dims %v", dims)
		}
	}
	if _, err := NewCombiner(3, 3, 2); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestFitValidation(t *testing.T) {
	c, err := NewCombiner(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fit([]int{0}, []int{0, 1}, []int{0}, 1); err == nil {
		t.Fatal("expected misaligned error")
	}
	if err := c.Fit(nil, nil, nil, 1); err == nil {
		t.Fatal("expected empty error")
	}
	if err := c.Fit([]int{0}, []int{0}, []int{0}, 0); err == nil {
		t.Fatal("expected smoothing error")
	}
	if err := c.Fit([]int{5}, []int{0}, []int{0}, 1); err == nil {
		t.Fatal("expected label-range error")
	}
	if err := c.Fit([]int{0}, []int{5}, []int{0}, 1); err == nil {
		t.Fatal("expected parent-A range error")
	}
	if err := c.Fit([]int{0}, []int{0}, []int{5}, 1); err == nil {
		t.Fatal("expected parent-B range error")
	}
}

func TestCombineBeforeFitErrors(t *testing.T) {
	c, _ := NewCombiner(2, 2, 2)
	if _, err := c.Combine([]float64{1, 0}, []float64{1, 0}); err == nil {
		t.Fatal("expected not-fitted error")
	}
}

func TestCPTNormalizationProperty(t *testing.T) {
	// For any fitted combiner, Σ_k P(k | a, b) == 1 for every (a, b).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		classes, arityA, arityB := 2+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		c, err := NewCombiner(classes, arityA, arityB)
		if err != nil {
			return false
		}
		n := 20 + rng.Intn(100)
		labels := make([]int, n)
		pa := make([]int, n)
		pb := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(classes)
			pa[i] = rng.Intn(arityA)
			pb[i] = rng.Intn(arityB)
		}
		if err := c.Fit(labels, pa, pb, 0.5); err != nil {
			return false
		}
		for a := 0; a < arityA; a++ {
			for b := 0; b < arityB; b++ {
				sum := 0.0
				for k := 0; k < classes; k++ {
					sum += c.CPT(k, a, b)
				}
				if math.Abs(sum-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCombinePosteriorIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, _ := NewCombiner(3, 3, 2)
	n := 200
	labels, pa, pb := make([]int, n), make([]int, n), make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(3)
		pa[i] = labels[i] // parent A is a perfect predictor
		pb[i] = rng.Intn(2)
	}
	if err := c.Fit(labels, pa, pb, 1); err != nil {
		t.Fatal(err)
	}
	post, err := c.Combine([]float64{0.2, 0.5, 0.3}, []float64{0.6, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range post {
		if p < 0 || p > 1 {
			t.Fatalf("posterior entry %g outside [0,1]", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posterior sums to %g", sum)
	}
}

func TestCombinerLearnsPerfectParent(t *testing.T) {
	// Parent A is always right; parent B is noise. The fitted BN should
	// essentially follow parent A.
	rng := rand.New(rand.NewSource(2))
	c, _ := NewCombiner(3, 3, 3)
	n := 600
	labels, pa, pb := make([]int, n), make([]int, n), make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(3)
		pa[i] = labels[i]
		pb[i] = rng.Intn(3)
	}
	if err := c.Fit(labels, pa, pb, 0.1); err != nil {
		t.Fatal(err)
	}
	for want := 0; want < 3; want++ {
		pA := []float64{0.05, 0.05, 0.05}
		pA[want] = 0.9
		got, err := c.Predict(pA, []float64{1.0 / 3, 1.0 / 3, 1.0 / 3})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("BN should follow the perfect parent: got %d, want %d", got, want)
		}
	}
}

func TestCombinerResolvesAmbiguityWithSecondParent(t *testing.T) {
	// Parent A confuses classes 0 and 1 (predicts 0 for both); parent B
	// separates them perfectly. The BN must use B to disambiguate — the
	// paper's texting-vs-talking scenario in miniature.
	rng := rand.New(rand.NewSource(3))
	c, _ := NewCombiner(2, 2, 2)
	n := 400
	labels, pa, pb := make([]int, n), make([]int, n), make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(2)
		pa[i] = 0 // A is blind
		pb[i] = labels[i]
	}
	if err := c.Fit(labels, pa, pb, 0.1); err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict([]float64{1, 0}, []float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("BN ignored the informative parent: got %d, want 1", got)
	}
	got, err = c.Predict([]float64{1, 0}, []float64{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("BN ignored the informative parent: got %d, want 0", got)
	}
}

func TestCombineDistributionValidation(t *testing.T) {
	c, _ := NewCombiner(2, 2, 2)
	if err := c.Fit([]int{0, 1}, []int{0, 1}, []int{0, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Combine([]float64{1}, []float64{1, 0}); err == nil {
		t.Fatal("expected parent-A width error")
	}
	if _, err := c.Combine([]float64{1, 0}, []float64{1}); err == nil {
		t.Fatal("expected parent-B width error")
	}
}

func TestClassMapValidate(t *testing.T) {
	m := ClassMap{0, 1, 2, 0, 0, 0}
	if err := m.Validate(6, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(5, 3); err == nil {
		t.Fatal("expected length error")
	}
	if err := (ClassMap{0, 5}).Validate(2, 3); err == nil {
		t.Fatal("expected range error")
	}
}

func TestProductCombine(t *testing.T) {
	pA := []float64{0.5, 0.3, 0.2}
	pB := []float64{0.9, 0.1}
	m := ClassMap{0, 0, 1}
	out, err := ProductCombine(pA, pB, m)
	if err != nil {
		t.Fatal(err)
	}
	// Unnormalized: {0.45, 0.27, 0.02}; class 0 wins.
	if ArgMax(out) != 0 {
		t.Fatalf("product combine argmax = %d", ArgMax(out))
	}
	sum := 0.0
	for _, p := range out {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("product combine sums to %g", sum)
	}
}

func TestProductCombineDegenerateFallsBack(t *testing.T) {
	pA := []float64{1, 0}
	pB := []float64{0, 1}
	m := ClassMap{0, 1}
	out, err := ProductCombine(pA, pB, m)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("degenerate product should fall back to parent A, got %v", out)
	}
}

func TestAverageCombine(t *testing.T) {
	pA := []float64{0.25, 0.25, 0.25, 0.25}
	pB := []float64{0.7, 0.3}
	m := ClassMap{0, 0, 1, 1}
	out, err := AverageCombine(pA, pB, m)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range out {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("average combine sums to %g", sum)
	}
	// Classes mapping to B-outcome 0 should outrank those mapping to 1.
	if !(out[0] > out[2]) {
		t.Fatalf("average combine ordering wrong: %v", out)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{0.1, 0.7, 0.2}) != 1 {
		t.Fatal("ArgMax wrong")
	}
	if ArgMax([]float64{-3, -1, -2}) != 1 {
		t.Fatal("ArgMax wrong for negatives")
	}
}

package bayes

import (
	"fmt"
	"math"
)

// MultiCombiner generalizes Combiner to any number of parent modalities —
// the paper's ensemble design is "extensible to adding more modalities"
// (§6), and this is that extension: one CPT cell per joint parent outcome,
// estimated from training observations with Laplace smoothing.
//
// The CPT has Π arity_i cells per class, so the combiner is practical for
// the small parent counts a vehicle deployment sees (a handful of devices).
type MultiCombiner struct {
	classes int
	arities []int
	strides []int
	cpt     [][]float64 // cpt[k][flat parent index]
	fitted  bool
}

// NewMultiCombiner returns an unfitted combiner over parents with the given
// outcome arities.
func NewMultiCombiner(classes int, arities []int) (*MultiCombiner, error) {
	if classes < 2 {
		return nil, fmt.Errorf("bayes: need at least 2 classes, got %d", classes)
	}
	if len(arities) == 0 {
		return nil, fmt.Errorf("bayes: need at least one parent")
	}
	cells := 1
	for i, a := range arities {
		if a < 1 {
			return nil, fmt.Errorf("bayes: parent %d has arity %d", i, a)
		}
		if cells > 1<<20/a {
			return nil, fmt.Errorf("bayes: joint parent space too large")
		}
		cells *= a
	}
	strides := make([]int, len(arities))
	s := 1
	for i := len(arities) - 1; i >= 0; i-- {
		strides[i] = s
		s *= arities[i]
	}
	cpt := make([][]float64, classes)
	for k := range cpt {
		cpt[k] = make([]float64, cells)
	}
	return &MultiCombiner{
		classes: classes,
		arities: append([]int(nil), arities...),
		strides: strides,
		cpt:     cpt,
	}, nil
}

// Parents returns the number of parent modalities.
func (c *MultiCombiner) Parents() int { return len(c.arities) }

// Classes returns the number of output classes.
func (c *MultiCombiner) Classes() int { return c.classes }

func (c *MultiCombiner) flatIndex(outcomes []int) (int, error) {
	if len(outcomes) != len(c.arities) {
		return 0, fmt.Errorf("bayes: %d parent outcomes for %d parents", len(outcomes), len(c.arities))
	}
	idx := 0
	for i, o := range outcomes {
		if o < 0 || o >= c.arities[i] {
			return 0, fmt.Errorf("bayes: parent %d outcome %d outside [0,%d)", i, o, c.arities[i])
		}
		idx += o * c.strides[i]
	}
	return idx, nil
}

// Fit estimates the CPT from aligned observations: trueLabels[i] is the
// ground truth and preds[p][i] is parent p's hard prediction for sample i.
func (c *MultiCombiner) Fit(trueLabels []int, preds [][]int, smoothing float64) error {
	if len(preds) != len(c.arities) {
		return fmt.Errorf("bayes: %d prediction streams for %d parents", len(preds), len(c.arities))
	}
	n := len(trueLabels)
	if n == 0 {
		return fmt.Errorf("bayes: cannot fit on zero observations")
	}
	if smoothing <= 0 {
		return fmt.Errorf("bayes: smoothing must be positive, got %g", smoothing)
	}
	for p, stream := range preds {
		if len(stream) != n {
			return fmt.Errorf("bayes: parent %d has %d predictions for %d labels", p, len(stream), n)
		}
	}
	counts := make([][]float64, c.classes)
	for k := range counts {
		counts[k] = make([]float64, len(c.cpt[k]))
		for i := range counts[k] {
			counts[k][i] = smoothing
		}
	}
	outcomes := make([]int, len(preds))
	for i := 0; i < n; i++ {
		y := trueLabels[i]
		if y < 0 || y >= c.classes {
			return fmt.Errorf("bayes: label %d of sample %d out of range [0,%d)", y, i, c.classes)
		}
		for p := range preds {
			outcomes[p] = preds[p][i]
		}
		idx, err := c.flatIndex(outcomes)
		if err != nil {
			return fmt.Errorf("bayes: sample %d: %w", i, err)
		}
		counts[y][idx]++
	}
	cells := len(c.cpt[0])
	for idx := 0; idx < cells; idx++ {
		total := 0.0
		for k := 0; k < c.classes; k++ {
			total += counts[k][idx]
		}
		for k := 0; k < c.classes; k++ {
			c.cpt[k][idx] = counts[k][idx] / total
		}
	}
	c.fitted = true
	return nil
}

// Combine marginalizes the parents' probability distributions through the
// joint CPT: P(k) ∝ Σ_joint Π_p probs[p][o_p] · P(k | o_1..o_P).
func (c *MultiCombiner) Combine(probs [][]float64) ([]float64, error) {
	if !c.fitted {
		return nil, fmt.Errorf("bayes: multi-combiner not fitted")
	}
	if len(probs) != len(c.arities) {
		return nil, fmt.Errorf("bayes: %d distributions for %d parents", len(probs), len(c.arities))
	}
	for p, dist := range probs {
		if len(dist) != c.arities[p] {
			return nil, fmt.Errorf("bayes: parent %d distribution has %d entries, want %d", p, len(dist), c.arities[p])
		}
	}
	// Joint parent weights by iterating the flat product space.
	cells := len(c.cpt[0])
	post := make([]float64, c.classes)
	outcomes := make([]int, len(c.arities))
	for idx := 0; idx < cells; idx++ {
		rem := idx
		w := 1.0
		for p := range c.arities {
			outcomes[p] = rem / c.strides[p]
			rem %= c.strides[p]
			w *= probs[p][outcomes[p]]
		}
		if w == 0 {
			continue
		}
		for k := 0; k < c.classes; k++ {
			post[k] += w * c.cpt[k][idx]
		}
	}
	total := 0.0
	for _, v := range post {
		total += v
	}
	if total <= 0 || math.IsNaN(total) {
		return nil, fmt.Errorf("bayes: degenerate multi posterior (total %g)", total)
	}
	for k := range post {
		post[k] /= total
	}
	return post, nil
}

// Predict returns the arg-max class of Combine(probs).
func (c *MultiCombiner) Predict(probs [][]float64) (int, error) {
	post, err := c.Combine(probs)
	if err != nil {
		return 0, err
	}
	return ArgMax(post), nil
}

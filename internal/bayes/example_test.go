package bayes_test

import (
	"fmt"

	"darnet/internal/bayes"
)

// The combiner learns, from training observations, how much to trust each
// modality for each class — here parent B perfectly separates the two
// classes that parent A confuses.
func ExampleCombiner() {
	c, err := bayes.NewCombiner(2, 2, 2)
	if err != nil {
		panic(err)
	}
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	predA := []int{0, 0, 0, 0, 0, 0, 0, 0} // A always says class 0
	predB := []int{0, 1, 0, 1, 0, 1, 0, 1} // B is right every time
	if err := c.Fit(labels, predA, predB, 0.1); err != nil {
		panic(err)
	}
	class, err := c.Predict([]float64{0.9, 0.1}, []float64{0.2, 0.8})
	if err != nil {
		panic(err)
	}
	fmt.Println("fused class:", class)
	// Output: fused class: 1
}

// ProductCombine is the naive fusion the Bayesian Network is compared
// against: multiply the full-class distribution by the projected parent.
func ExampleProductCombine() {
	pFull := []float64{0.5, 0.3, 0.2}
	pIMU := []float64{0.9, 0.1}
	classMap := bayes.ClassMap{0, 0, 1} // classes 0,1 share IMU outcome 0
	post, err := bayes.ProductCombine(pFull, pIMU, classMap)
	if err != nil {
		panic(err)
	}
	fmt.Println("argmax:", bayes.ArgMax(post))
	// Output: argmax: 0
}

package bayes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMultiCombinerValidation(t *testing.T) {
	if _, err := NewMultiCombiner(1, []int{2}); err == nil {
		t.Fatal("expected class-count error")
	}
	if _, err := NewMultiCombiner(2, nil); err == nil {
		t.Fatal("expected no-parents error")
	}
	if _, err := NewMultiCombiner(2, []int{2, 0}); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := NewMultiCombiner(2, []int{1 << 12, 1 << 12}); err == nil {
		t.Fatal("expected joint-space-size error")
	}
	c, err := NewMultiCombiner(3, []int{6, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Parents() != 3 || c.Classes() != 3 {
		t.Fatalf("dims wrong: %d parents %d classes", c.Parents(), c.Classes())
	}
}

func TestMultiCombinerMatchesTwoParentCombiner(t *testing.T) {
	// With exactly two parents, MultiCombiner must agree with Combiner.
	rng := rand.New(rand.NewSource(1))
	n := 400
	labels := make([]int, n)
	pa := make([]int, n)
	pb := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(4)
		pa[i] = rng.Intn(4)
		pb[i] = rng.Intn(3)
	}
	two, err := NewCombiner(4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := two.Fit(labels, pa, pb, 1); err != nil {
		t.Fatal(err)
	}
	multi, err := NewMultiCombiner(4, []int{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := multi.Fit(labels, [][]int{pa, pb}, 1); err != nil {
		t.Fatal(err)
	}
	pA := []float64{0.4, 0.3, 0.2, 0.1}
	pB := []float64{0.5, 0.25, 0.25}
	a, err := two.Combine(pA, pB)
	if err != nil {
		t.Fatal(err)
	}
	b, err := multi.Combine([][]float64{pA, pB})
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		if math.Abs(a[k]-b[k]) > 1e-12 {
			t.Fatalf("class %d: two-parent %g vs multi %g", k, a[k], b[k])
		}
	}
}

func TestMultiCombinerThirdModalityHelps(t *testing.T) {
	// Parents A and B are blind between classes 0/1; parent C separates
	// them. Adding C as a third modality must resolve the ambiguity — the
	// paper's extensibility claim in miniature.
	rng := rand.New(rand.NewSource(2))
	n := 600
	labels := make([]int, n)
	pa := make([]int, n)
	pb := make([]int, n)
	pc := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(2)
		pa[i] = 0
		pb[i] = rng.Intn(2) // noise
		pc[i] = labels[i]
	}
	c, err := NewMultiCombiner(2, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fit(labels, [][]int{pa, pb, pc}, 0.1); err != nil {
		t.Fatal(err)
	}
	pred, err := c.Predict([][]float64{{1, 0}, {0.5, 0.5}, {0.1, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if pred != 1 {
		t.Fatalf("third modality ignored: predicted %d", pred)
	}
	pred, err = c.Predict([][]float64{{1, 0}, {0.5, 0.5}, {0.9, 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if pred != 0 {
		t.Fatalf("third modality ignored: predicted %d", pred)
	}
}

func TestMultiCombinerPosteriorIsDistributionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		classes := 2 + rng.Intn(3)
		parents := 1 + rng.Intn(3)
		arities := make([]int, parents)
		for i := range arities {
			arities[i] = 2 + rng.Intn(3)
		}
		c, err := NewMultiCombiner(classes, arities)
		if err != nil {
			return false
		}
		n := 50 + rng.Intn(100)
		labels := make([]int, n)
		preds := make([][]int, parents)
		for p := range preds {
			preds[p] = make([]int, n)
		}
		for i := 0; i < n; i++ {
			labels[i] = rng.Intn(classes)
			for p := range preds {
				preds[p][i] = rng.Intn(arities[p])
			}
		}
		if err := c.Fit(labels, preds, 0.5); err != nil {
			return false
		}
		probs := make([][]float64, parents)
		for p := range probs {
			probs[p] = make([]float64, arities[p])
			total := 0.0
			for j := range probs[p] {
				probs[p][j] = rng.Float64()
				total += probs[p][j]
			}
			for j := range probs[p] {
				probs[p][j] /= total
			}
		}
		post, err := c.Combine(probs)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range post {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiCombinerFitValidation(t *testing.T) {
	c, err := NewMultiCombiner(2, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fit([]int{0}, [][]int{{0}}, 1); err == nil {
		t.Fatal("expected stream-count error")
	}
	if err := c.Fit(nil, [][]int{{}, {}}, 1); err == nil {
		t.Fatal("expected empty error")
	}
	if err := c.Fit([]int{0}, [][]int{{0}, {0, 1}}, 1); err == nil {
		t.Fatal("expected misaligned error")
	}
	if err := c.Fit([]int{0}, [][]int{{0}, {0}}, 0); err == nil {
		t.Fatal("expected smoothing error")
	}
	if err := c.Fit([]int{9}, [][]int{{0}, {0}}, 1); err == nil {
		t.Fatal("expected label-range error")
	}
	if err := c.Fit([]int{0}, [][]int{{5}, {0}}, 1); err == nil {
		t.Fatal("expected outcome-range error")
	}
	if _, err := c.Combine([][]float64{{1, 0}, {1, 0}}); err == nil {
		t.Fatal("expected not-fitted error")
	}
	if err := c.Fit([]int{0, 1}, [][]int{{0, 1}, {0, 1}}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Combine([][]float64{{1, 0}}); err == nil {
		t.Fatal("expected distribution-count error")
	}
	if _, err := c.Combine([][]float64{{1, 0}, {1}}); err == nil {
		t.Fatal("expected distribution-width error")
	}
}

package bayes

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// combinerBlob is the gob wire form of a fitted combiner.
type combinerBlob struct {
	Classes int
	ArityA  int
	ArityB  int
	CPT     []float64 // flattened [k][a][b]
	Fitted  bool
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *Combiner) MarshalBinary() ([]byte, error) {
	blob := combinerBlob{Classes: c.classes, ArityA: c.arityA, ArityB: c.arityB, Fitted: c.fitted}
	blob.CPT = make([]float64, 0, c.classes*c.arityA*c.arityB)
	for k := 0; k < c.classes; k++ {
		for a := 0; a < c.arityA; a++ {
			blob.CPT = append(blob.CPT, c.cpt[k][a]...)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		return nil, fmt.Errorf("bayes: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Combiner) UnmarshalBinary(data []byte) error {
	var blob combinerBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); err != nil {
		return fmt.Errorf("bayes: decode: %w", err)
	}
	fresh, err := NewCombiner(blob.Classes, blob.ArityA, blob.ArityB)
	if err != nil {
		return fmt.Errorf("bayes: snapshot: %w", err)
	}
	if len(blob.CPT) != blob.Classes*blob.ArityA*blob.ArityB {
		return fmt.Errorf("bayes: snapshot CPT has %d entries, want %d", len(blob.CPT), blob.Classes*blob.ArityA*blob.ArityB)
	}
	i := 0
	for k := 0; k < blob.Classes; k++ {
		for a := 0; a < blob.ArityA; a++ {
			copy(fresh.cpt[k][a], blob.CPT[i:i+blob.ArityB])
			i += blob.ArityB
		}
	}
	fresh.fitted = blob.Fitted
	*c = *fresh
	return nil
}

package collect

import (
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"

	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

func TestDriftClockDrifts(t *testing.T) {
	mt := NewManualTime(0)
	c := NewDriftClock(mt.Now, 0.001) // 1 ms per second
	mt.Advance(10_000)
	if got := c.NowMillis(); got != 10_010 {
		t.Fatalf("drifted clock = %d, want 10010", got)
	}
	if skew := c.SkewMillis(); skew != 10 {
		t.Fatalf("skew = %d, want 10", skew)
	}
	c.SetMillis(mt.Now())
	if skew := c.SkewMillis(); skew != 0 {
		t.Fatalf("skew after set = %d, want 0", skew)
	}
	mt.Advance(5000)
	if skew := c.SkewMillis(); skew != 5 {
		t.Fatalf("skew after further drift = %d, want 5", skew)
	}
}

func TestManualTimeAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManualTime(0).Advance(-1)
}

func TestNewAgentValidation(t *testing.T) {
	mt := NewManualTime(0)
	clk := NewDriftClock(mt.Now, 0)
	sensors := []Sensor{SensorFunc{SensorName: "s", ReadFunc: func() []float64 { return []float64{1} }}}
	if _, err := NewAgent(AgentConfig{}, clk, sensors, nil); err == nil {
		t.Fatal("expected missing-ID error")
	}
	if _, err := NewAgent(AgentConfig{ID: "a"}, clk, nil, nil); err == nil {
		t.Fatal("expected no-sensors error")
	}
	a, err := NewAgent(AgentConfig{ID: "a"}, clk, sensors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.PollPeriodMS != 25 {
		t.Fatalf("default poll period = %d, want 25 (paper §4.1)", a.PollPeriodMS)
	}
}

// runSession wires one agent to a controller over an in-memory connection,
// runs fn with the agent, and returns the controller once the agent side is
// done.
func runSession(t *testing.T, mt *ManualTime, drift float64, latencyComp int64, fn func(a *Agent)) *Controller {
	t.Helper()
	db := tsdb.New()
	ctrl := NewController(db, mt.Now)
	aConnRaw, cConnRaw := net.Pipe()
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- ctrl.ServeConn(wire.NewConn(cConnRaw))
	}()

	clk := NewDriftClock(mt.Now, drift)
	value := 0.0
	sensors := []Sensor{
		SensorFunc{SensorName: "accel", ReadFunc: func() []float64 {
			value++
			return []float64{value, -value, 9.8}
		}},
		SensorFunc{SensorName: "gyro", ReadFunc: func() []float64 { return []float64{0.1} }},
	}
	agent, err := NewAgent(AgentConfig{ID: "imu-1", Modality: "imu", PollPeriodMS: 25, LatencyComp: latencyComp}, clk, sensors, wire.NewConn(aConnRaw))
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Hello(); err != nil {
		t.Fatal(err)
	}
	fn(agent)
	if err := aConnRaw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("controller: %v", err)
	}
	return ctrl
}

func TestAgentControllerSession(t *testing.T) {
	mt := NewManualTime(1_000_000)
	ctrl := runSession(t, mt, 0, 0, func(a *Agent) {
		for i := 0; i < 10; i++ {
			a.Poll()
			mt.Advance(25)
		}
		if a.Buffered() != 20 { // 2 sensors × 10 polls
			t.Fatalf("buffered = %d", a.Buffered())
		}
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
		if a.Buffered() != 0 {
			t.Fatal("flush did not clear buffer")
		}
	})

	ids := ctrl.AgentIDs()
	if len(ids) != 1 || ids[0] != "imu-1" {
		t.Fatalf("agents = %v", ids)
	}
	st, ok := ctrl.AgentStats("imu-1")
	if !ok || st.Batches != 1 || st.Readings != 20 || st.Modality != "imu" {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := ctrl.AgentStats("nobody"); ok {
		t.Fatal("unknown agent should not have stats")
	}

	// Per-axis series were created and hold ordered points.
	db := ctrl.DB()
	names := db.Series()
	wantSeries := []string{"imu-1/accel[0]", "imu-1/accel[1]", "imu-1/accel[2]", "imu-1/gyro[0]"}
	if len(names) != len(wantSeries) {
		t.Fatalf("series = %v", names)
	}
	for i, w := range wantSeries {
		if names[i] != w {
			t.Fatalf("series = %v, want %v", names, wantSeries)
		}
	}
	if db.Len("imu-1/accel[0]") != 10 {
		t.Fatalf("accel[0] has %d points", db.Len("imu-1/accel[0]"))
	}
}

func TestClockSyncCorrectsDrift(t *testing.T) {
	mt := NewManualTime(0)
	// Strong drift: 5 ms per second.
	runSession(t, mt, 0.005, 0, func(a *Agent) {
		// Let the clock drift for 10 simulated seconds.
		mt.Advance(10_000)
		if skew := a.ClockSkewMillis(); skew != 50 {
			t.Fatalf("pre-sync skew = %d, want 50", skew)
		}
		a.Poll()
		// The first flush after >5 s triggers a ClockSync (period elapsed).
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
		if skew := a.ClockSkewMillis(); skew != 0 {
			t.Fatalf("post-sync skew = %d, want 0", skew)
		}
	})
}

func TestClockSyncAppliesLatencyCompensation(t *testing.T) {
	mt := NewManualTime(0)
	runSession(t, mt, 0.005, 7, func(a *Agent) {
		mt.Advance(10_000)
		a.Poll()
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
		// Clock set to master + 7 ms compensation.
		if skew := a.ClockSkewMillis(); skew != 7 {
			t.Fatalf("post-sync skew = %d, want 7", skew)
		}
	})
}

func TestSyncPeriodRespected(t *testing.T) {
	mt := NewManualTime(0)
	ctrl := runSession(t, mt, 0.01, 0, func(a *Agent) {
		// Flush every simulated second for 12 seconds: syncs should happen
		// only when 5 s have elapsed (at t=5 s and t=10 s, not every flush).
		for i := 0; i < 12; i++ {
			mt.Advance(1000)
			a.Poll()
			if err := a.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		// After the t=10s sync the clock drifted 2 more seconds at 1%.
		if skew := a.ClockSkewMillis(); skew != 20 {
			t.Fatalf("final skew = %d, want 20 (2 s of 1%% drift since last sync)", skew)
		}
	})
	st, _ := ctrl.AgentStats("imu-1")
	if st.Batches != 12 {
		t.Fatalf("batches = %d", st.Batches)
	}
}

func TestAlignResamplesAndSmooths(t *testing.T) {
	mt := NewManualTime(0)
	db := tsdb.New()
	ctrl := NewController(db, mt.Now)
	// Two sensors at different, offset rates observing linear signals.
	for ts := int64(0); ts <= 1000; ts += 40 {
		db.Insert("a/accel[0]", tsdb.Point{TimestampMillis: ts, Value: float64(ts)})
	}
	for ts := int64(13); ts <= 1000; ts += 100 {
		db.Insert("b/gyro[0]", tsdb.Point{TimestampMillis: ts, Value: 2 * float64(ts)})
	}
	al, err := ctrl.Align([]string{"a/accel[0]", "b/gyro[0]"}, AlignConfig{
		FromMillis: 100, ToMillis: 900, StepMillis: 50, SmoothWindow: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Values) != 2 || len(al.Values[0]) != 16 || len(al.Values[1]) != 16 {
		t.Fatalf("aligned shape %dx%d", len(al.Values), len(al.Values[0]))
	}
	// Linear signals resample exactly.
	for i, v := range al.Values[0] {
		want := float64(100 + 50*i)
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("aligned accel[%d] = %g, want %g", i, v, want)
		}
	}
	for i, v := range al.Values[1] {
		want := 2 * float64(100+50*i)
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("aligned gyro[%d] = %g, want %g", i, v, want)
		}
	}

	// Smoothing path.
	sm, err := ctrl.Align([]string{"a/accel[0]"}, AlignConfig{
		FromMillis: 100, ToMillis: 900, StepMillis: 50, SmoothWindow: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sm.Values[0]) != 16 {
		t.Fatalf("smoothed length %d", len(sm.Values[0]))
	}

	if _, err := ctrl.Align(nil, AlignConfig{}); err == nil {
		t.Fatal("expected empty-series error")
	}
	if _, err := ctrl.Align([]string{"missing"}, AlignConfig{FromMillis: 0, ToMillis: 10, StepMillis: 1}); err == nil {
		t.Fatal("expected missing-series error")
	}
}

func TestProcessingPolicyDecisions(t *testing.T) {
	p := DefaultProcessingPolicy()
	tests := []struct {
		name     string
		net      NetworkConditions
		wantMode ProcessingMode
		wantDist DistortionLevel
	}{
		{"no bandwidth", NetworkConditions{BandwidthKbps: 10, LatencyMillis: 50}, ProcessLocal, DistortNone},
		{"too laggy", NetworkConditions{BandwidthKbps: 5000, LatencyMillis: 900}, ProcessLocal, DistortNone},
		{"fat pipe", NetworkConditions{BandwidthKbps: 5000, LatencyMillis: 50}, ProcessRemote, DistortNone},
		{"medium pipe", NetworkConditions{BandwidthKbps: 300, LatencyMillis: 50}, ProcessRemote, DistortLow},
		{"thin pipe", NetworkConditions{BandwidthKbps: 80, LatencyMillis: 50}, ProcessRemote, DistortMedium},
		{"straw", NetworkConditions{BandwidthKbps: 20, LatencyMillis: 50}, ProcessRemote, DistortHigh},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mode, dist := p.Decide(tt.net)
			if mode != tt.wantMode || dist != tt.wantDist {
				t.Fatalf("Decide(%+v) = %v/%v, want %v/%v", tt.net, mode, dist, tt.wantMode, tt.wantDist)
			}
		})
	}
}

func TestEnumStrings(t *testing.T) {
	if ProcessLocal.String() != "local" || ProcessRemote.String() != "remote" {
		t.Fatal("processing mode strings wrong")
	}
	if !strings.Contains(ProcessingMode(9).String(), "9") {
		t.Fatal("unknown mode should render its value")
	}
	for d, want := range map[DistortionLevel]string{
		DistortNone: "none", DistortLow: "low", DistortMedium: "medium", DistortHigh: "high",
	} {
		if d.String() != want {
			t.Fatalf("distortion %d = %q", d, d.String())
		}
	}
}

func TestControllerRejectsForeignBatch(t *testing.T) {
	mt := NewManualTime(0)
	db := tsdb.New()
	ctrl := NewController(db, mt.Now)
	aRaw, cRaw := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ctrl.ServeConn(wire.NewConn(cRaw)) }()

	conn := wire.NewConn(aRaw)
	if err := conn.Send(&wire.Hello{AgentID: "a", Modality: "imu", PeriodMillis: 25}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&wire.SampleBatch{AgentID: "intruder"}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("controller should reject mismatched agent IDs")
	}
	aRaw.Close()
}

func TestControllerRejectsBadHandshake(t *testing.T) {
	mt := NewManualTime(0)
	ctrl := NewController(tsdb.New(), mt.Now)
	aRaw, cRaw := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ctrl.ServeConn(wire.NewConn(cRaw)) }()
	conn := wire.NewConn(aRaw)
	if err := conn.Send(&wire.Ack{}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("controller should reject a non-hello first message")
	}
	aRaw.Close()
}

// delayedRW advances a manual clock on every read, simulating one-way
// network latency on messages flowing toward the wrapped reader.
type delayedRW struct {
	rw    net.Conn
	mt    *ManualTime
	delay int64
}

func (d delayedRW) Read(p []byte) (int, error) {
	n, err := d.rw.Read(p)
	d.mt.Advance(d.delay)
	return n, err
}

func (d delayedRW) Write(p []byte) (int, error) { return d.rw.Write(p) }

func TestClockSyncMeasuresRTT(t *testing.T) {
	mt := NewManualTime(0)
	db := tsdb.New()
	ctrl := NewController(db, mt.Now)
	aRaw, cRaw := net.Pipe()
	done := make(chan error, 1)
	// 3 ms delay toward each side: RTT should measure ~6 ms.
	go func() {
		done <- ctrl.ServeConn(wire.NewConn(delayedRW{rw: cRaw, mt: mt, delay: 3}))
	}()
	clk := NewDriftClock(mt.Now, 0)
	sensors := []Sensor{SensorFunc{SensorName: "s", ReadFunc: func() []float64 { return []float64{1} }}}
	agent, err := NewAgent(AgentConfig{ID: "a", PollPeriodMS: 25}, clk, sensors, wire.NewConn(delayedRW{rw: aRaw, mt: mt, delay: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Hello(); err != nil {
		t.Fatal(err)
	}
	mt.Advance(6000) // past the sync period
	agent.Poll()
	if err := agent.Flush(); err != nil {
		t.Fatal(err)
	}
	aRaw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st, ok := ctrl.AgentStats("a")
	if !ok {
		t.Fatal("missing stats")
	}
	// The clock-sync exchange crosses the link twice; intermediate protocol
	// messages add their own read delays, so assert a sane band.
	if st.LastRTTMillis < 6 || st.LastRTTMillis > 20 {
		t.Fatalf("measured RTT = %d ms, want within [6, 20]", st.LastRTTMillis)
	}
}

func TestMultipleAgentsConcurrently(t *testing.T) {
	// Several agents stream to one controller over separate connections at
	// once; all series and stats must land correctly (run with -race).
	mt := NewManualTime(0)
	db := tsdb.New()
	ctrl := NewController(db, mt.Now)

	const agents = 4
	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		aRaw, cRaw := net.Pipe()
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := ctrl.ServeConn(wire.NewConn(cRaw)); err != nil {
				t.Errorf("controller: %v", err)
			}
		}()
		go func(id int, raw net.Conn) {
			defer wg.Done()
			defer raw.Close()
			clk := NewDriftClock(mt.Now, 0)
			v := float64(id)
			sensors := []Sensor{SensorFunc{SensorName: "s", ReadFunc: func() []float64 { return []float64{v} }}}
			agent, err := NewAgent(AgentConfig{ID: fmt.Sprintf("agent-%d", id), Modality: "imu", PollPeriodMS: 25}, clk, sensors, wire.NewConn(raw))
			if err != nil {
				t.Errorf("agent: %v", err)
				return
			}
			if err := agent.Hello(); err != nil {
				t.Errorf("hello: %v", err)
				return
			}
			for k := 0; k < 30; k++ {
				agent.Poll()
				if k%10 == 9 {
					if err := agent.Flush(); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				}
			}
		}(a, aRaw)
	}
	wg.Wait()

	if got := len(ctrl.AgentIDs()); got != agents {
		t.Fatalf("registered %d agents, want %d", got, agents)
	}
	for a := 0; a < agents; a++ {
		id := fmt.Sprintf("agent-%d", a)
		if n := db.Len(id + "/s[0]"); n != 30 {
			t.Fatalf("%s stored %d points, want 30", id, n)
		}
		st, ok := ctrl.AgentStats(id)
		if !ok || st.Readings != 30 {
			t.Fatalf("%s stats = %+v", id, st)
		}
	}
}

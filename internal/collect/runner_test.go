package collect

import (
	"net"
	"testing"
	"time"

	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

func wallMillis() int64 { return time.Now().UnixMilli() }

func TestRunnerStreamsUntilShutdown(t *testing.T) {
	db := tsdb.New()
	ctrl := NewController(db, wallMillis)
	aRaw, cRaw := net.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- ctrl.ServeConn(wire.NewConn(cRaw)) }()

	clock := NewDriftClock(wallMillis, 0)
	polls := 0
	sensors := []Sensor{SensorFunc{SensorName: "s", ReadFunc: func() []float64 { return []float64{1} }}}
	agent, err := NewAgent(AgentConfig{ID: "rt", Modality: "imu", PollPeriodMS: 5}, clock, sensors, wire.NewConn(aRaw))
	if err != nil {
		t.Fatal(err)
	}
	runner, err := StartRunner(agent, 20*time.Millisecond, func() { polls++ })
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if err := runner.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Shutdown twice is safe.
	if err := runner.Shutdown(); err != nil {
		t.Fatal(err)
	}
	aRaw.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("controller: %v", err)
	}
	if polls < 5 {
		t.Fatalf("only %d polls in 120 ms at a 5 ms period", polls)
	}
	if got := db.Len("rt/s[0]"); got < 5 {
		t.Fatalf("only %d readings stored", got)
	}
	st, _ := ctrl.AgentStats("rt")
	if st.Batches < 2 {
		t.Fatalf("only %d batches", st.Batches)
	}
}

func TestRunnerSurfacesTransportFailure(t *testing.T) {
	db := tsdb.New()
	ctrl := NewController(db, wallMillis)
	aRaw, cRaw := net.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- ctrl.ServeConn(wire.NewConn(cRaw)) }()

	clock := NewDriftClock(wallMillis, 0)
	sensors := []Sensor{SensorFunc{SensorName: "s", ReadFunc: func() []float64 { return []float64{1} }}}
	agent, err := NewAgent(AgentConfig{ID: "rt2", Modality: "imu", PollPeriodMS: 5}, clock, sensors, wire.NewConn(aRaw))
	if err != nil {
		t.Fatal(err)
	}
	runner, err := StartRunner(agent, 15*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the link mid-session: the next flush must fail and stop the loop.
	time.Sleep(30 * time.Millisecond)
	cRaw.Close()
	aRaw.Close()
	deadline := time.After(2 * time.Second)
	for runner.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("runner did not observe the broken transport")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := runner.Shutdown(); err == nil {
		t.Fatal("shutdown should report the transport error")
	}
	<-serveDone // controller side finishes with or without error
}

func TestStartRunnerValidation(t *testing.T) {
	if _, err := StartRunner(nil, time.Second, nil); err == nil {
		t.Fatal("expected nil-agent error")
	}
	clock := NewDriftClock(wallMillis, 0)
	sensors := []Sensor{SensorFunc{SensorName: "s", ReadFunc: func() []float64 { return nil }}}
	agent, err := NewAgent(AgentConfig{ID: "x"}, clock, sensors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StartRunner(agent, 0, nil); err == nil {
		t.Fatal("expected cadence error")
	}
}

package collect

import (
	"fmt"

	"darnet/internal/imu"
)

// imuChannels lists the sensor channels of one IMU agent in the order they
// map onto an imu.Sample, using the controller's per-axis series naming.
var imuChannels = []string{
	"accel[0]", "accel[1]", "accel[2]",
	"gyro[0]", "gyro[1]", "gyro[2]",
	"gravity[0]", "gravity[1]", "gravity[2]",
	"rotation[0]", "rotation[1]", "rotation[2]", "rotation[3]",
}

// IMUSeriesNames returns the full series names of one IMU agent's channels.
func IMUSeriesNames(agentID string) []string {
	out := make([]string, len(imuChannels))
	for i, ch := range imuChannels {
		out[i] = SeriesName(agentID, ch)
	}
	return out
}

// AssembleIMUWindows is the controller→analytics-engine bridge: it aligns an
// IMU agent's stored channels onto the paper's 4 Hz grid (with the given
// smoothing window) and segments the aligned stream into consecutive
// imu.WindowSize windows ready for the sequence models.
func (c *Controller) AssembleIMUWindows(agentID string, smoothWindow int) ([]imu.Window, error) {
	series := IMUSeriesNames(agentID)
	first, last, ok := c.db.Bounds(series[0])
	if !ok {
		return nil, fmt.Errorf("collect: agent %q has no stored IMU data", agentID)
	}
	step := int64(1000 / imu.SampleRateHz)
	al, err := c.Align(series, AlignConfig{
		FromMillis: first, ToMillis: last + 1, StepMillis: step, SmoothWindow: smoothWindow,
	})
	if err != nil {
		return nil, err
	}
	steps := len(al.Values[0])
	var windows []imu.Window
	for start := 0; start+imu.WindowSize <= steps; start += imu.WindowSize {
		samples := make([]imu.Sample, imu.WindowSize)
		for t := 0; t < imu.WindowSize; t++ {
			col := start + t
			var s imu.Sample
			s.TimestampMillis = al.From + int64(col)*al.Step
			for i := 0; i < 3; i++ {
				s.Accel[i] = al.Values[i][col]
				s.Gyro[i] = al.Values[3+i][col]
				s.Gravity[i] = al.Values[6+i][col]
			}
			for i := 0; i < 4; i++ {
				s.Rotation[i] = al.Values[9+i][col]
			}
			samples[t] = s
		}
		windows = append(windows, imu.Window{Samples: samples})
	}
	return windows, nil
}

// IMUSensors adapts a sample source into the four collection-agent sensors
// (accelerometer, gyroscope, gravity, rotation) the paper's agent registers.
// current is called once per sensor read and must return the sample to
// expose.
func IMUSensors(current func() imu.Sample) []Sensor {
	return []Sensor{
		SensorFunc{SensorName: "accel", ReadFunc: func() []float64 {
			s := current()
			return []float64{s.Accel[0], s.Accel[1], s.Accel[2]}
		}},
		SensorFunc{SensorName: "gyro", ReadFunc: func() []float64 {
			s := current()
			return []float64{s.Gyro[0], s.Gyro[1], s.Gyro[2]}
		}},
		SensorFunc{SensorName: "gravity", ReadFunc: func() []float64 {
			s := current()
			return []float64{s.Gravity[0], s.Gravity[1], s.Gravity[2]}
		}},
		SensorFunc{SensorName: "rotation", ReadFunc: func() []float64 {
			s := current()
			return []float64{s.Rotation[0], s.Rotation[1], s.Rotation[2], s.Rotation[3]}
		}},
	}
}

package collect

import (
	"errors"
	"net"
	"testing"

	"darnet/internal/durable"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

// markRecorder is a CommitLog capturing every mark (or failing on demand).
type markRecorder struct {
	marks []uint64
	fail  error
}

func (r *markRecorder) AppendCommit(agentID string, seq uint64) error {
	if r.fail != nil {
		return r.fail
	}
	r.marks = append(r.marks, seq)
	return nil
}

// serveManual starts ServeConn on one end of a pipe and hands the test the
// agent side, already past the hello exchange.
func serveManual(t *testing.T, ctrl *Controller, id string) (*wire.Conn, chan error) {
	t.Helper()
	aRaw, cRaw := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ctrl.ServeConn(wire.NewConn(cRaw)) }()
	conn := wire.NewConn(aRaw)
	if err := conn.Send(&wire.Hello{AgentID: id, Modality: "imu", PeriodMillis: 25}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatalf("hello ack: %v", err)
	}
	t.Cleanup(func() {
		//lint:ignore errdrop test teardown; ServeConn's error is checked via done
		aRaw.Close()
		<-done
	})
	return conn, done
}

func sendMarkedBatch(t *testing.T, conn *wire.Conn, id string, seq uint64, ts int64) *wire.Ack {
	t.Helper()
	batch := &wire.SampleBatch{AgentID: id, Seq: seq, Readings: []wire.Reading{
		{Sensor: "accel", TimestampMillis: ts, Values: []float64{1}},
	}}
	if err := conn.Send(batch); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := msg.(*wire.Ack)
	if !ok {
		t.Fatalf("expected ack, got %T", msg)
	}
	return ack
}

// TestCommitLogReceivesMarks pins the mark discipline: one mark per stored
// batch (after the dedupe high-water mark advances, before the ack), a mark
// even for legacy Seq==0 batches, and no mark for a deduped replay.
func TestCommitLogReceivesMarks(t *testing.T) {
	mt := NewManualTime(1_000_000)
	ctrl := NewController(tsdb.New(), mt.Now)
	rec := &markRecorder{}
	ctrl.SetCommitLog(rec)
	conn, _ := serveManual(t, ctrl, "car-1")

	sendMarkedBatch(t, conn, "car-1", 1, 10)
	sendMarkedBatch(t, conn, "car-1", 2, 20)
	sendMarkedBatch(t, conn, "car-1", 1, 10) // replay: acked, not stored, not marked
	sendMarkedBatch(t, conn, "car-1", 0, 30) // legacy: stored, flush-marked

	want := []uint64{1, 2, 0}
	if len(rec.marks) != len(want) {
		t.Fatalf("marks = %v, want %v", rec.marks, want)
	}
	for i, w := range want {
		if rec.marks[i] != w {
			t.Fatalf("marks = %v, want %v", rec.marks, want)
		}
	}
	st, _ := ctrl.AgentStats("car-1")
	if st.LastSeq != 2 || st.Deduped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCommitLogErrorKeepsServing pins availability over durability: a failing
// commit log must not kill the connection or block the ack.
func TestCommitLogErrorKeepsServing(t *testing.T) {
	mt := NewManualTime(1_000_000)
	ctrl := NewController(tsdb.New(), mt.Now)
	ctrl.SetCommitLog(&markRecorder{fail: errors.New("disk on fire")})
	conn, _ := serveManual(t, ctrl, "car-1")

	if ack := sendMarkedBatch(t, conn, "car-1", 1, 10); ack.Seq != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	if ack := sendMarkedBatch(t, conn, "car-1", 2, 20); ack.Seq != 2 {
		t.Fatalf("second batch after log failure: ack = %+v", ack)
	}
	if got := ctrl.DB().Len("car-1/accel[0]"); got != 2 {
		t.Fatalf("store has %d rows, want 2", got)
	}
}

// TestSessionSnapshotRestoreRoundTrip proves the checkpoint session contract:
// a snapshot fed to a fresh controller restores the dedupe high-water marks,
// so a batch replayed across the "restart" is dropped without storing rows.
func TestSessionSnapshotRestoreRoundTrip(t *testing.T) {
	mt := NewManualTime(1_000_000)
	ctrl := NewController(tsdb.New(), mt.Now)
	conn, _ := serveManual(t, ctrl, "car-1")
	sendMarkedBatch(t, conn, "car-1", 1, 10)
	sendMarkedBatch(t, conn, "car-1", 2, 20)

	snap := ctrl.SessionSnapshot()
	if len(snap) != 1 || snap[0].AgentID != "car-1" || snap[0].LastSeq != 2 || snap[0].Batches != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}

	ctrl2 := NewController(tsdb.New(), mt.Now)
	ctrl2.RestoreSessions(snap)
	conn2, _ := serveManual(t, ctrl2, "car-1")
	sendMarkedBatch(t, conn2, "car-1", 2, 20) // retransmit across restart: must dedupe
	sendMarkedBatch(t, conn2, "car-1", 3, 30)

	st, ok := ctrl2.AgentStats("car-1")
	if !ok || st.Deduped != 1 || st.LastSeq != 3 {
		t.Fatalf("restored stats = %+v", st)
	}
	if got := ctrl2.DB().Len("car-1/accel[0]"); got != 1 {
		t.Fatalf("replayed batch stored rows: %d, want 1", got)
	}
}

// TestSessionSnapshotSorted pins the deterministic ordering checkpoints rely
// on for byte-stable encodes.
func TestSessionSnapshotSorted(t *testing.T) {
	mt := NewManualTime(0)
	ctrl := NewController(tsdb.New(), mt.Now)
	ctrl.RestoreSessions([]durable.SessionState{
		{AgentID: "zebra", LastSeq: 1},
		{AgentID: "alpha", LastSeq: 2},
		{AgentID: "mike", LastSeq: 3},
	})
	snap := ctrl.SessionSnapshot()
	if len(snap) != 3 || snap[0].AgentID != "alpha" || snap[1].AgentID != "mike" || snap[2].AgentID != "zebra" {
		t.Fatalf("snapshot order = %+v", snap)
	}
	// Restore never clobbers a live session or moves a mark backwards.
	ctrl.RestoreSessions([]durable.SessionState{{AgentID: "alpha", LastSeq: 0}})
	st, _ := ctrl.AgentStats("alpha")
	if st.LastSeq != 2 {
		t.Fatalf("restore clobbered live session: %+v", st)
	}
}

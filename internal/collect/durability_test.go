package collect

import (
	"errors"
	"net"
	"testing"

	"darnet/internal/durable"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

// markRecorder is a CommitLog capturing every mark and frame append (or
// failing on demand). ops records the call order across all three methods,
// so tests can assert the frame-before-mark-before-sync discipline.
type markRecorder struct {
	marks  []uint64
	frames []int64 // frame-append timestamps, in arrival order
	syncs  int
	ops    []string
	fail   error
}

func (r *markRecorder) AppendCommit(agentID string, seq uint64) error {
	if r.fail != nil {
		return r.fail
	}
	r.marks = append(r.marks, seq)
	r.ops = append(r.ops, "mark")
	return nil
}

func (r *markRecorder) AppendFrame(agentID string, tsMillis int64, pix []float64) error {
	if r.fail != nil {
		return r.fail
	}
	r.frames = append(r.frames, tsMillis)
	r.ops = append(r.ops, "frame")
	return nil
}

func (r *markRecorder) SyncCommits() error {
	r.syncs++
	if r.fail != nil {
		return r.fail
	}
	r.ops = append(r.ops, "sync")
	return nil
}

// serveManual starts ServeConn on one end of a pipe and hands the test the
// agent side, already past the hello exchange.
func serveManual(t *testing.T, ctrl *Controller, id string) (*wire.Conn, chan error) {
	t.Helper()
	aRaw, cRaw := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ctrl.ServeConn(wire.NewConn(cRaw)) }()
	conn := wire.NewConn(aRaw)
	if err := conn.Send(&wire.Hello{AgentID: id, Modality: "imu", PeriodMillis: 25}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatalf("hello ack: %v", err)
	}
	t.Cleanup(func() {
		//lint:ignore errdrop test teardown; ServeConn's error is checked via done
		aRaw.Close()
		<-done
	})
	return conn, done
}

func sendMarkedBatch(t *testing.T, conn *wire.Conn, id string, seq uint64, ts int64) *wire.Ack {
	t.Helper()
	batch := &wire.SampleBatch{AgentID: id, Seq: seq, Readings: []wire.Reading{
		{Sensor: "accel", TimestampMillis: ts, Values: []float64{1}},
	}}
	if err := conn.Send(batch); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := msg.(*wire.Ack)
	if !ok {
		t.Fatalf("expected ack, got %T", msg)
	}
	return ack
}

// TestCommitLogReceivesMarks pins the mark discipline: one mark per stored
// batch (after the dedupe high-water mark advances, before the ack), a mark
// even for legacy Seq==0 batches, and no mark for a deduped replay.
func TestCommitLogReceivesMarks(t *testing.T) {
	mt := NewManualTime(1_000_000)
	ctrl := NewController(tsdb.New(), mt.Now)
	rec := &markRecorder{}
	ctrl.SetCommitLog(rec)
	conn, _ := serveManual(t, ctrl, "car-1")

	sendMarkedBatch(t, conn, "car-1", 1, 10)
	sendMarkedBatch(t, conn, "car-1", 2, 20)
	sendMarkedBatch(t, conn, "car-1", 1, 10) // replay: acked, not stored, not marked
	sendMarkedBatch(t, conn, "car-1", 0, 30) // legacy: stored, flush-marked

	want := []uint64{1, 2, 0}
	if len(rec.marks) != len(want) {
		t.Fatalf("marks = %v, want %v", rec.marks, want)
	}
	for i, w := range want {
		if rec.marks[i] != w {
			t.Fatalf("marks = %v, want %v", rec.marks, want)
		}
	}
	st, _ := ctrl.AgentStats("car-1")
	if st.LastSeq != 2 || st.Deduped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCommitLogReceivesFrames pins the frame durability discipline: a
// frame-bearing batch logs every frame before its commit mark, the whole
// batch earns exactly one pre-ack sync, a deduped replay logs nothing, and
// frames never leak into the scalar store.
func TestCommitLogReceivesFrames(t *testing.T) {
	mt := NewManualTime(1_000_000)
	ctrl := NewController(tsdb.New(), mt.Now)
	rec := &markRecorder{}
	ctrl.SetCommitLog(rec)
	conn, _ := serveManual(t, ctrl, "car-1")

	sendFrame := func(seq uint64, ts int64) {
		t.Helper()
		batch := &wire.SampleBatch{AgentID: "car-1", Seq: seq, Readings: []wire.Reading{
			{Sensor: FrameSensorName, TimestampMillis: ts, Values: []float64{float64(ts), 0.5}},
			{Sensor: "accel", TimestampMillis: ts, Values: []float64{1}},
		}}
		if err := conn.Send(batch); err != nil {
			t.Fatal(err)
		}
		if msg, err := conn.Recv(); err != nil {
			t.Fatal(err)
		} else if _, ok := msg.(*wire.Ack); !ok {
			t.Fatalf("expected ack, got %T", msg)
		}
	}
	sendFrame(1, 10)
	sendFrame(1, 10) // replay: acked, nothing logged, no extra sync
	sendFrame(2, 20)

	wantOps := []string{"frame", "mark", "sync", "frame", "mark", "sync"}
	if len(rec.ops) != len(wantOps) {
		t.Fatalf("commit log saw %v, want %v", rec.ops, wantOps)
	}
	for i, w := range wantOps {
		if rec.ops[i] != w {
			t.Fatalf("commit log saw %v, want %v (frames must be logged before the batch's mark, one sync per stored batch)", rec.ops, wantOps)
		}
	}
	if len(rec.frames) != 2 || rec.frames[0] != 10 || rec.frames[1] != 20 {
		t.Fatalf("frame appends = %v, want [10 20]", rec.frames)
	}
	if ctrl.FrameCount("car-1") != 2 {
		t.Fatalf("frame store holds %d frames, want 2", ctrl.FrameCount("car-1"))
	}
	// Frames route to the frame store only; the reserved channel must not
	// materialize as a scalar series.
	if got := ctrl.DB().Len(SeriesName("car-1", FrameSensorName) + "[0]"); got != 0 {
		t.Fatalf("frame reading leaked %d rows into the scalar store", got)
	}
	if got := ctrl.DB().Len("car-1/accel[0]"); got != 2 {
		t.Fatalf("scalar rows = %d, want 2", got)
	}
}

// TestCommitLogErrorKeepsServing pins availability over durability: a failing
// commit log must not kill the connection or block the ack.
func TestCommitLogErrorKeepsServing(t *testing.T) {
	mt := NewManualTime(1_000_000)
	ctrl := NewController(tsdb.New(), mt.Now)
	ctrl.SetCommitLog(&markRecorder{fail: errors.New("disk on fire")})
	conn, _ := serveManual(t, ctrl, "car-1")

	if ack := sendMarkedBatch(t, conn, "car-1", 1, 10); ack.Seq != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	if ack := sendMarkedBatch(t, conn, "car-1", 2, 20); ack.Seq != 2 {
		t.Fatalf("second batch after log failure: ack = %+v", ack)
	}
	if got := ctrl.DB().Len("car-1/accel[0]"); got != 2 {
		t.Fatalf("store has %d rows, want 2", got)
	}
}

// TestSessionSnapshotRestoreRoundTrip proves the checkpoint session contract:
// a snapshot fed to a fresh controller restores the dedupe high-water marks,
// so a batch replayed across the "restart" is dropped without storing rows.
func TestSessionSnapshotRestoreRoundTrip(t *testing.T) {
	mt := NewManualTime(1_000_000)
	ctrl := NewController(tsdb.New(), mt.Now)
	conn, _ := serveManual(t, ctrl, "car-1")
	sendMarkedBatch(t, conn, "car-1", 1, 10)
	sendMarkedBatch(t, conn, "car-1", 2, 20)

	snap := ctrl.SessionSnapshot()
	if len(snap) != 1 || snap[0].AgentID != "car-1" || snap[0].LastSeq != 2 || snap[0].Batches != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}

	ctrl2 := NewController(tsdb.New(), mt.Now)
	ctrl2.RestoreSessions(snap)
	conn2, _ := serveManual(t, ctrl2, "car-1")
	sendMarkedBatch(t, conn2, "car-1", 2, 20) // retransmit across restart: must dedupe
	sendMarkedBatch(t, conn2, "car-1", 3, 30)

	st, ok := ctrl2.AgentStats("car-1")
	if !ok || st.Deduped != 1 || st.LastSeq != 3 {
		t.Fatalf("restored stats = %+v", st)
	}
	if got := ctrl2.DB().Len("car-1/accel[0]"); got != 1 {
		t.Fatalf("replayed batch stored rows: %d, want 1", got)
	}
}

// TestSessionSnapshotSorted pins the deterministic ordering checkpoints rely
// on for byte-stable encodes.
func TestSessionSnapshotSorted(t *testing.T) {
	mt := NewManualTime(0)
	ctrl := NewController(tsdb.New(), mt.Now)
	ctrl.RestoreSessions([]durable.SessionState{
		{AgentID: "zebra", LastSeq: 1},
		{AgentID: "alpha", LastSeq: 2},
		{AgentID: "mike", LastSeq: 3},
	})
	snap := ctrl.SessionSnapshot()
	if len(snap) != 3 || snap[0].AgentID != "alpha" || snap[1].AgentID != "mike" || snap[2].AgentID != "zebra" {
		t.Fatalf("snapshot order = %+v", snap)
	}
	// Restore never clobbers a live session or moves a mark backwards.
	ctrl.RestoreSessions([]durable.SessionState{{AgentID: "alpha", LastSeq: 0}})
	st, _ := ctrl.AgentStats("alpha")
	if st.LastSeq != 2 {
		t.Fatalf("restore clobbered live session: %+v", st)
	}
}

package collect_test

import (
	"fmt"

	"darnet/internal/collect"
	"darnet/internal/imu"
)

// The paper's §5.1 protocol: 15-second scripted segments, repeated, with
// windows labelled by majority overlap afterwards.
func ExampleSessionScript() {
	script, err := collect.NewSessionScript(
		collect.ScriptSegment{Label: 0, DurationMillis: 15000}, // normal
		collect.ScriptSegment{Label: 2, DurationMillis: 15000}, // texting
	)
	if err != nil {
		panic(err)
	}
	repeated, err := script.Repeat(10)
	if err != nil {
		panic(err)
	}
	fmt.Println("segments:", len(repeated.Segments))
	fmt.Println("duration:", repeated.TotalMillis()/1000, "s")

	// A 5-second window starting 16 s into the session lies in the texting
	// segment.
	samples := make([]imu.Sample, imu.WindowSize)
	for i := range samples {
		samples[i].TimestampMillis = 16_000 + int64(i)*250
	}
	labels, err := repeated.LabelWindows(0, []imu.Window{{Samples: samples}})
	if err != nil {
		panic(err)
	}
	fmt.Println("window label:", labels[0])
	// Output:
	// segments: 20
	// duration: 300 s
	// window label: 2
}

// The processing policy picks where to run analytics and which privacy
// level fits the link (paper §3.2).
func ExampleProcessingPolicy_Decide() {
	policy := collect.DefaultProcessingPolicy()
	mode, level := policy.Decide(collect.NetworkConditions{
		BandwidthKbps: 120, LatencyMillis: 60,
	})
	fmt.Println(mode, level)
	// Output: remote medium
}

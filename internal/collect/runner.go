package collect

import (
	"fmt"
	"sync"
	"time"
)

// Runner drives an agent in real time: it polls the sensors at the agent's
// configured period and flushes batches at the given cadence, on a managed
// goroutine that Shutdown stops and waits for. This is the deployment-mode
// counterpart of the manually-stepped loops the simulations use.
type Runner struct {
	agent      *Agent
	flushEvery time.Duration
	onPoll     func() // optional per-poll hook (e.g. advancing a replay cursor)

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu  sync.Mutex
	err error
}

// StartRunner sends the agent's hello and starts the polling/flushing loop.
// onPoll, when non-nil, runs before every sensor poll. The returned runner
// must be stopped with Shutdown.
func StartRunner(agent *Agent, flushEvery time.Duration, onPoll func()) (*Runner, error) {
	if agent == nil {
		return nil, fmt.Errorf("collect: runner needs an agent")
	}
	if flushEvery <= 0 {
		return nil, fmt.Errorf("collect: flush cadence must be positive, got %v", flushEvery)
	}
	if err := agent.Hello(); err != nil {
		return nil, fmt.Errorf("collect: runner hello: %w", err)
	}
	r := &Runner{
		agent:      agent,
		flushEvery: flushEvery,
		onPoll:     onPoll,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go r.loop()
	return r, nil
}

func (r *Runner) loop() {
	defer close(r.done)
	poll := time.NewTicker(time.Duration(r.agent.PollPeriodMS) * time.Millisecond)
	defer poll.Stop()
	flush := time.NewTicker(r.flushEvery)
	defer flush.Stop()
	for {
		select {
		case <-poll.C:
			if r.onPoll != nil {
				r.onPoll()
			}
			r.agent.Poll()
		case <-flush.C:
			if err := r.agent.Flush(); err != nil {
				r.setErr(err)
				return
			}
		case <-r.stop:
			r.setErr(r.agent.Flush())
			return
		}
	}
}

func (r *Runner) setErr(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil {
		r.err = err
	}
}

// Shutdown signals the loop to stop, performs a final flush, waits for the
// goroutine to exit, and returns the first error the loop encountered.
func (r *Runner) Shutdown() error {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Err returns the first error the loop encountered so far (nil while
// healthy). The loop stops itself on the first transport error.
func (r *Runner) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

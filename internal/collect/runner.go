package collect

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"darnet/internal/telemetry"
	"darnet/internal/wire"
)

// mReconnects counts successful agent reconnections after a transport
// failure — each one is a survived outage.
var mReconnects = telemetry.NewCounter("darnet_collect_reconnects_total", "agent reconnections completed after a transport failure")

// mDeferredFlushes counts flush ticks skipped because the controller's
// admission grant was exhausted — the agent heartbeats instead, both to stay
// inside the read deadline and to pick up a refreshed grant.
var mDeferredFlushes = telemetry.NewCounter("darnet_collect_flushes_deferred_total", "flush ticks deferred under zero backpressure credits")

// Dialer opens a fresh transport connection to the controller. Runners use
// it to reconnect after an outage; each call must return a new connection.
type Dialer func() (*wire.Conn, error)

// RunnerConfig configures a managed agent loop.
type RunnerConfig struct {
	// FlushEvery is the batch transmission cadence.
	FlushEvery time.Duration
	// OnPoll, when non-nil, runs before every sensor poll (e.g. advancing a
	// replay cursor).
	OnPoll func()
	// Dialer, when non-nil, turns transport failures into reconnect attempts
	// with exponential backoff instead of stopping the loop.
	Dialer Dialer
	// BackoffBase is the first reconnect delay (default 50 ms); each failed
	// attempt doubles it up to BackoffMax (default 5 s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffJitter is the ± fraction of random spread applied to each delay
	// (default 0.2), decorrelating fleets of agents that lost the same
	// controller. Zero jitter must be asked for with a negative value.
	BackoffJitter float64
	// MaxAttempts bounds consecutive failed reconnect attempts before the
	// runner gives up and surfaces the error (default 8; negative means
	// retry until Shutdown).
	MaxAttempts int
	// Seed seeds the jitter source so chaos tests are reproducible; the
	// default 0 is a valid fixed seed.
	Seed int64
}

func (cfg *RunnerConfig) fillDefaults() {
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.BackoffJitter == 0 {
		cfg.BackoffJitter = 0.2
	} else if cfg.BackoffJitter < 0 {
		cfg.BackoffJitter = 0
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 8
	}
}

// Runner drives an agent in real time: it polls the sensors at the agent's
// configured period and flushes batches at the given cadence, on a managed
// goroutine that Shutdown stops and waits for. This is the deployment-mode
// counterpart of the manually-stepped loops the simulations use.
//
// With a Dialer configured the runner is fault tolerant: a failed flush
// enters a reconnect loop with exponential backoff plus jitter, polling (and
// spilling into the agent's bounded buffer) continues during the outage, and
// the unacked batch is retransmitted once the session resumes.
type Runner struct {
	agent *Agent
	cfg   RunnerConfig
	rng   *rand.Rand // owned by the loop goroutine

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu         sync.Mutex
	err        error
	reconnects int
	deferred   int
}

// StartRunner sends the agent's hello and starts the polling/flushing loop
// with the legacy fail-fast behavior (no dialer: the loop stops on the first
// transport error). onPoll, when non-nil, runs before every sensor poll. The
// returned runner must be stopped with Shutdown.
func StartRunner(agent *Agent, flushEvery time.Duration, onPoll func()) (*Runner, error) {
	return StartRunnerConfig(agent, RunnerConfig{FlushEvery: flushEvery, OnPoll: onPoll})
}

// StartRunnerConfig sends the agent's hello and starts the managed loop with
// full fault-tolerance configuration.
func StartRunnerConfig(agent *Agent, cfg RunnerConfig) (*Runner, error) {
	if agent == nil {
		return nil, fmt.Errorf("collect: runner needs an agent")
	}
	if cfg.FlushEvery <= 0 {
		return nil, fmt.Errorf("collect: flush cadence must be positive, got %v", cfg.FlushEvery)
	}
	cfg.fillDefaults()
	if err := agent.Hello(); err != nil {
		return nil, fmt.Errorf("collect: runner hello: %w", err)
	}
	r := &Runner{
		agent: agent,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go r.loop()
	return r, nil
}

func (r *Runner) pollOnce() {
	if r.cfg.OnPoll != nil {
		r.cfg.OnPoll()
	}
	r.agent.Poll()
}

// flushOrHeartbeat transmits the backlog, or a liveness heartbeat when there
// is none, so an idle agent stays inside the controller's read deadline.
// When the controller's admission grant is exhausted the flush is deferred:
// the heartbeat's ack refreshes the grant, and meanwhile readings pool in
// the agent's bounded spill buffer (oldest shed first, counted) — the
// protocol's single backpressure valve.
func (r *Runner) flushOrHeartbeat() error {
	if r.agent.Buffered() == 0 {
		return r.agent.Heartbeat()
	}
	if r.agent.ShouldDefer() {
		mDeferredFlushes.Inc()
		r.mu.Lock()
		r.deferred++
		r.mu.Unlock()
		return r.agent.Heartbeat()
	}
	return r.agent.Flush()
}

func (r *Runner) loop() {
	defer close(r.done)
	poll := time.NewTicker(time.Duration(r.agent.PollPeriodMS) * time.Millisecond)
	defer poll.Stop()
	flush := time.NewTicker(r.cfg.FlushEvery)
	defer flush.Stop()
	for {
		select {
		case <-poll.C:
			r.pollOnce()
		case <-flush.C:
			if err := r.flushOrHeartbeat(); err != nil {
				if !r.recover(poll, err) {
					return
				}
			}
		case <-r.stop:
			r.setErr(r.agent.Flush())
			return
		}
	}
}

// recover runs the reconnect loop after a transport failure: exponential
// backoff with jitter between attempts, sensor polling continuing throughout
// (readings spill into the agent's bounded buffer), and the retained backlog
// flushed as soon as a dial plus re-hello succeeds. It returns false when
// the runner should stop — Shutdown was requested, or MaxAttempts
// consecutive attempts failed.
func (r *Runner) recover(poll *time.Ticker, cause error) bool {
	if r.cfg.Dialer == nil {
		r.setErr(cause)
		return false
	}
	attempt := 0
	backoff := time.NewTimer(r.backoffDelay(attempt))
	defer backoff.Stop()
	for {
		select {
		case <-poll.C:
			r.pollOnce()
		case <-r.stop:
			r.setErr(cause)
			return false
		case <-backoff.C:
			attempt++
			if r.attemptReconnect(&cause) {
				return true
			}
			if r.cfg.MaxAttempts > 0 && attempt >= r.cfg.MaxAttempts {
				r.setErr(fmt.Errorf("collect: gave up after %d reconnect attempts: %w", attempt, cause))
				return false
			}
			backoff.Reset(r.backoffDelay(attempt))
		}
	}
}

// attemptReconnect tries one dial + session resume + backlog flush,
// recording the failure in cause so the caller's give-up error names the
// most recent obstacle.
func (r *Runner) attemptReconnect(cause *error) bool {
	conn, err := r.cfg.Dialer()
	if err != nil {
		*cause = err
		return false
	}
	if err := r.agent.Reconnect(conn); err != nil {
		*cause = err
		return false
	}
	r.mu.Lock()
	r.reconnects++
	r.mu.Unlock()
	mReconnects.Inc()
	// Drain the backlog retained across the outage; a failure here re-enters
	// backoff with the new cause.
	if err := r.agent.Flush(); err != nil {
		*cause = err
		return false
	}
	return true
}

// backoffDelay returns the jittered exponential delay for the given attempt
// (0-based): base·2^attempt capped at max, spread by ±jitter.
func (r *Runner) backoffDelay(attempt int) time.Duration {
	d := r.cfg.BackoffBase << uint(attempt)
	if d <= 0 || d > r.cfg.BackoffMax {
		d = r.cfg.BackoffMax
	}
	if j := r.cfg.BackoffJitter; j > 0 {
		d = time.Duration(float64(d) * (1 + j*(2*r.rng.Float64()-1)))
	}
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

func (r *Runner) setErr(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil {
		r.err = err
	}
}

// Shutdown signals the loop to stop, performs a final flush, waits for the
// goroutine to exit, and returns the first error the loop encountered. It is
// idempotent: concurrent and repeated calls are safe and all return the same
// error.
func (r *Runner) Shutdown() error {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Err returns the first error the loop encountered so far (nil while
// healthy). It is safe to call concurrently with the loop and with Shutdown.
func (r *Runner) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Reconnects returns how many outages the runner has survived via a
// successful reconnect.
func (r *Runner) Reconnects() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reconnects
}

// Deferred returns how many flush ticks were skipped under zero backpressure
// credits.
func (r *Runner) Deferred() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deferred
}

package collect

import (
	"fmt"
	"io"
	"time"

	"darnet/internal/telemetry"
	"darnet/internal/wire"
)

// Agent-side resilience metrics: readings sacrificed to the spill bound and
// batch retransmissions after reconnects.
var (
	mSpillDropped = telemetry.NewCounter("darnet_collect_spill_dropped_total", "readings dropped oldest-first when the agent spill buffer overflowed during an outage")
	mRetransmits  = telemetry.NewCounter("darnet_collect_batches_retransmitted_total", "unacked batches re-sent after a reconnect")
	mHeartbeatsTx = telemetry.NewCounter("darnet_collect_heartbeats_sent_total", "liveness heartbeats sent by agents with nothing to flush")
)

// DefaultMaxSpill bounds the readings an agent retains while its link is
// down: at the paper's 25 ms poll period and four IMU sensors this is ~25
// seconds of outage before the oldest readings are sacrificed.
const DefaultMaxSpill = 4096

// Sensor is one pollable device channel (accelerometer, gyroscope, camera…).
// Read returns the current values; the agent stamps them with its clock.
type Sensor interface {
	Name() string
	Read() []float64
}

// SensorFunc adapts a function to the Sensor interface.
type SensorFunc struct {
	SensorName string
	ReadFunc   func() []float64
}

// Name implements Sensor.
func (s SensorFunc) Name() string { return s.SensorName }

// Read implements Sensor.
func (s SensorFunc) Read() []float64 { return s.ReadFunc() }

// Agent is a collection agent (paper §3.1): it polls its sensors
// periodically, maintains an internal clock for timestamping, buffers
// readings, and transmits batches to the controller. The polling and
// transmission cadences are decoupled, matching the paper's guidance that
// poll period follows the sensor rate while transmission follows link
// characteristics.
//
// Delivery is at-least-once (protocol v2): each flush freezes the buffered
// readings into a pending batch with the next sequence number, and the
// sequence only advances once the controller acks it. If the link dies
// mid-flight the pending batch is retransmitted verbatim after Reconnect, so
// a controller that already stored it can recognize the replay by its
// sequence number and drop it. Readings polled while a batch is in flight
// accumulate in a spill buffer bounded by MaxSpill; when an outage outlasts
// the bound, the oldest spilled readings are dropped first (the freshest
// data is the most valuable for real-time classification).
//
// The spill buffer is the occupancy ledger of that bound: darnet-lint's
// qbound analyzer verifies every append is either preceded by a capacity
// check or trimmed back under one on every path to return.
//
//lint:bounded buf
type Agent struct {
	ID           string
	Modality     string
	PollPeriodMS uint32

	clock   *DriftClock
	sensors []Sensor
	conn    *wire.Conn
	// latencyComp is the empirically measured one-way network delay added to
	// the master's time when applying a ClockSync (§4.1).
	latencyComp int64
	// ackTimeout bounds each wait for a controller response; zero disables
	// the deadline (legacy behavior: wait forever).
	ackTimeout time.Duration
	maxSpill   int

	buf []wire.Reading // readings not yet frozen into a batch
	// pending is the frozen in-flight batch awaiting its ack; it is resent
	// unchanged across reconnects so the controller's dedupe stays sound.
	pending    []wire.Reading
	pendingSeq uint64
	seq        uint64 // last acked batch sequence
	dropped    int64  // readings sacrificed to the spill bound
	sent       bool   // pending was transmitted at least once since frozen

	// credits is the controller's most recent admission grant (protocol v3
	// backpressure); hasCredits distinguishes a zero grant from a legacy
	// controller that sends no signal at all.
	credits    uint32
	hasCredits bool

	// tracingOff suppresses the v4 trace-context field on outgoing batches,
	// producing byte-identical v3 frames — required when the controller is
	// pre-v4 (it rejects trailing bytes), and the baseline leg of the
	// tracing-overhead benchmark.
	tracingOff bool
}

// AgentConfig configures a collection agent.
type AgentConfig struct {
	ID           string
	Modality     string
	PollPeriodMS uint32
	LatencyComp  int64
	// AckTimeout bounds each wait for a controller ack; past it the flush
	// fails with a deadline error and the runner's reconnect path takes
	// over. Zero waits forever (the pre-fault-tolerance behavior).
	AckTimeout time.Duration
	// MaxSpill bounds retained readings across outages; 0 means
	// DefaultMaxSpill, negative means unbounded.
	MaxSpill int
	// DisableTracing keeps the v4 trace-context field off outgoing batches
	// (byte-identical v3 frames), for pre-v4 controllers and for measuring
	// tracing overhead against a clean baseline.
	DisableTracing bool
}

// NewAgent returns an agent over the given transport connection.
func NewAgent(cfg AgentConfig, clock *DriftClock, sensors []Sensor, conn *wire.Conn) (*Agent, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("collect: agent needs an ID")
	}
	if len(sensors) == 0 {
		return nil, fmt.Errorf("collect: agent %s has no sensors", cfg.ID)
	}
	if cfg.PollPeriodMS == 0 {
		cfg.PollPeriodMS = 25 // paper: updates every 25 ms
	}
	if cfg.MaxSpill == 0 {
		cfg.MaxSpill = DefaultMaxSpill
	}
	return &Agent{
		ID:           cfg.ID,
		Modality:     cfg.Modality,
		PollPeriodMS: cfg.PollPeriodMS,
		clock:        clock,
		sensors:      sensors,
		conn:         conn,
		latencyComp:  cfg.LatencyComp,
		ackTimeout:   cfg.AckTimeout,
		maxSpill:     cfg.MaxSpill,
		tracingOff:   cfg.DisableTracing,
	}, nil
}

// Hello registers the agent with the controller and waits for the ack.
func (a *Agent) Hello() error {
	if err := a.conn.Send(&wire.Hello{AgentID: a.ID, Modality: a.Modality, PeriodMillis: a.PollPeriodMS}); err != nil {
		return fmt.Errorf("collect: %s hello: %w", a.ID, err)
	}
	return a.awaitAck(0)
}

// Reconnect swaps in a fresh transport connection after an outage and
// re-registers with the controller. The controller recognizes the agent ID
// and resumes the session — sequence numbering and dedupe state carry over.
// The pending batch (if any) stays frozen; the next Flush retransmits it.
func (a *Agent) Reconnect(conn *wire.Conn) error {
	a.conn = conn
	return a.Hello()
}

// Poll reads every sensor once and buffers the readings, stamped with the
// agent's local clock. When an outage has filled the spill bound, the oldest
// unfrozen readings are dropped first.
func (a *Agent) Poll() {
	now := a.clock.NowMillis()
	for _, s := range a.sensors {
		a.buf = append(a.buf, wire.Reading{
			TimestampMillis: now,
			Sensor:          s.Name(),
			Values:          s.Read(),
		})
	}
	if over := len(a.pending) + len(a.buf) - a.maxSpill; a.maxSpill > 0 && over > 0 && len(a.buf) > 0 {
		if over > len(a.buf) {
			over = len(a.buf)
		}
		a.buf = append(a.buf[:0], a.buf[over:]...)
		a.dropped += int64(over)
		mSpillDropped.Add(int64(over))
	}
}

// Buffered returns the number of unacked readings the agent retains
// (in-flight batch plus spill buffer).
func (a *Agent) Buffered() int { return len(a.pending) + len(a.buf) }

// SpillDropped returns the total readings sacrificed to the spill bound.
func (a *Agent) SpillDropped() int64 { return a.dropped }

// NextSeq returns the sequence number the next fresh batch will carry.
func (a *Agent) NextSeq() uint64 { return a.seq + 1 }

// Flush transmits the pending batch — freezing the spill buffer into one
// first if none is in flight — and processes the controller's response,
// applying any clock synchronization that arrives before the ack. On error
// the batch stays pending and a later Flush (typically after Reconnect)
// retransmits it with the same sequence number.
//
// Each flush is traced as a root span whose context rides the batch's v4
// trace field (unless DisableTracing), so the controller's ingest span joins
// the same distributed trace. The span covers send through ack: its duration
// is the agent's view of batch round-trip time.
func (a *Agent) Flush() error {
	if a.pending == nil {
		if len(a.buf) == 0 {
			return nil
		}
		a.pending = a.buf
		a.pendingSeq = a.seq + 1
		a.buf = nil
		a.sent = false
	}
	span := telemetry.DefaultTracer.StartRoot("darnet_agent_flush_batch")
	defer span.End()
	batch := &wire.SampleBatch{AgentID: a.ID, Seq: a.pendingSeq, Readings: a.pending}
	if !a.tracingOff {
		batch.Trace = span.Context()
		batch.Trace.SentUnixNano = time.Now().UnixNano()
	}
	if a.sent {
		mRetransmits.Inc()
	}
	if err := a.conn.Send(batch); err != nil {
		return fmt.Errorf("collect: %s flush: %w", a.ID, err)
	}
	a.sent = true
	if err := a.awaitAck(a.pendingSeq); err != nil {
		return err
	}
	a.pending = nil
	a.seq = a.pendingSeq
	return nil
}

// Heartbeat proves liveness to the controller when there is nothing to
// flush, keeping the connection inside the controller's read deadline.
func (a *Agent) Heartbeat() error {
	if err := a.conn.Send(&wire.Heartbeat{AgentID: a.ID}); err != nil {
		return fmt.Errorf("collect: %s heartbeat: %w", a.ID, err)
	}
	mHeartbeatsTx.Inc()
	return a.awaitAck(0)
}

// awaitAck consumes controller messages until an Ack for at least minSeq,
// handling interleaved ClockSync requests: the agent sets its own clock to
// the master's UTC plus the measured network delay and reports back (§4.1).
// Acks echoing a sequence below minSeq are stale — a chaos transport that
// duplicates a batch frame makes the controller ack it twice, and advancing
// on the second (stale) ack would let a flush report success before its own
// batch was stored. With AckTimeout set, each wait is bounded by a read
// deadline so a dead controller surfaces as an error instead of a hang.
func (a *Agent) awaitAck(minSeq uint64) error {
	if a.ackTimeout > 0 {
		//lint:ignore errdrop transports without deadlines no-op; the Recv error is authoritative
		a.conn.SetReadDeadline(time.Now().Add(a.ackTimeout))
		defer a.conn.SetReadDeadline(time.Time{})
	}
	for {
		msg, err := a.conn.Recv()
		if err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return fmt.Errorf("collect: %s await ack: %w", a.ID, err)
		}
		switch m := msg.(type) {
		case *wire.Ack:
			// Every ack — including a stale one — may carry a fresher
			// admission grant; record it before deciding staleness.
			if n, ok := wire.DecodeCredits(m.Credits); ok {
				a.credits = n
				a.hasCredits = true
			}
			if m.Seq < minSeq {
				continue // stale ack for an already-settled batch
			}
			return nil
		case *wire.ClockSync:
			a.clock.SetMillis(m.MasterMillis + a.latencyComp)
			if err := a.conn.Send(&wire.ClockAck{AgentID: a.ID, AgentMillis: a.clock.NowMillis()}); err != nil {
				return fmt.Errorf("collect: %s clock ack: %w", a.ID, err)
			}
		default:
			return fmt.Errorf("collect: %s unexpected %T while awaiting ack", a.ID, msg)
		}
	}
}

// Credits returns the controller's most recent admission grant; ok is false
// when no grant has ever arrived (legacy controller or no streaming sink),
// which means unlimited.
func (a *Agent) Credits() (n uint32, ok bool) { return a.credits, a.hasCredits }

// ShouldDefer reports whether the next flush should be deferred for
// backpressure: the controller granted zero admission slots and no batch is
// already in flight. An in-flight batch is always retransmitted — the
// controller dedupes it — so deferral only stops new batches from freezing
// while readings pool in the bounded spill buffer, the single shedding valve.
func (a *Agent) ShouldDefer() bool {
	return a.pending == nil && len(a.buf) > 0 && a.hasCredits && a.credits == 0
}

// ClockSkewMillis exposes the agent clock's current error, for tests and
// telemetry.
func (a *Agent) ClockSkewMillis() int64 { return a.clock.SkewMillis() }

package collect

import (
	"fmt"
	"io"

	"darnet/internal/wire"
)

// Sensor is one pollable device channel (accelerometer, gyroscope, camera…).
// Read returns the current values; the agent stamps them with its clock.
type Sensor interface {
	Name() string
	Read() []float64
}

// SensorFunc adapts a function to the Sensor interface.
type SensorFunc struct {
	SensorName string
	ReadFunc   func() []float64
}

// Name implements Sensor.
func (s SensorFunc) Name() string { return s.SensorName }

// Read implements Sensor.
func (s SensorFunc) Read() []float64 { return s.ReadFunc() }

// Agent is a collection agent (paper §3.1): it polls its sensors
// periodically, maintains an internal clock for timestamping, buffers
// readings, and transmits batches to the controller. The polling and
// transmission cadences are decoupled, matching the paper's guidance that
// poll period follows the sensor rate while transmission follows link
// characteristics.
type Agent struct {
	ID           string
	Modality     string
	PollPeriodMS uint32

	clock   *DriftClock
	sensors []Sensor
	conn    *wire.Conn
	// latencyComp is the empirically measured one-way network delay added to
	// the master's time when applying a ClockSync (§4.1).
	latencyComp int64

	buf []wire.Reading
}

// AgentConfig configures a collection agent.
type AgentConfig struct {
	ID           string
	Modality     string
	PollPeriodMS uint32
	LatencyComp  int64
}

// NewAgent returns an agent over the given transport connection.
func NewAgent(cfg AgentConfig, clock *DriftClock, sensors []Sensor, conn *wire.Conn) (*Agent, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("collect: agent needs an ID")
	}
	if len(sensors) == 0 {
		return nil, fmt.Errorf("collect: agent %s has no sensors", cfg.ID)
	}
	if cfg.PollPeriodMS == 0 {
		cfg.PollPeriodMS = 25 // paper: updates every 25 ms
	}
	return &Agent{
		ID:           cfg.ID,
		Modality:     cfg.Modality,
		PollPeriodMS: cfg.PollPeriodMS,
		clock:        clock,
		sensors:      sensors,
		conn:         conn,
		latencyComp:  cfg.LatencyComp,
	}, nil
}

// Hello registers the agent with the controller and waits for the ack.
func (a *Agent) Hello() error {
	if err := a.conn.Send(&wire.Hello{AgentID: a.ID, Modality: a.Modality, PeriodMillis: a.PollPeriodMS}); err != nil {
		return fmt.Errorf("collect: %s hello: %w", a.ID, err)
	}
	return a.awaitAck()
}

// Poll reads every sensor once and buffers the readings, stamped with the
// agent's local clock.
func (a *Agent) Poll() {
	now := a.clock.NowMillis()
	for _, s := range a.sensors {
		a.buf = append(a.buf, wire.Reading{
			TimestampMillis: now,
			Sensor:          s.Name(),
			Values:          s.Read(),
		})
	}
}

// Buffered returns the number of unsent readings.
func (a *Agent) Buffered() int { return len(a.buf) }

// Flush transmits the buffered readings and processes the controller's
// response, applying any clock synchronization that arrives before the ack.
func (a *Agent) Flush() error {
	if len(a.buf) == 0 {
		return nil
	}
	batch := &wire.SampleBatch{AgentID: a.ID, Readings: a.buf}
	if err := a.conn.Send(batch); err != nil {
		return fmt.Errorf("collect: %s flush: %w", a.ID, err)
	}
	a.buf = a.buf[:0]
	return a.awaitAck()
}

// awaitAck consumes controller messages until an Ack, handling interleaved
// ClockSync requests: the agent sets its own clock to the master's UTC plus
// the measured network delay and reports back (§4.1).
func (a *Agent) awaitAck() error {
	for {
		msg, err := a.conn.Recv()
		if err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return fmt.Errorf("collect: %s await ack: %w", a.ID, err)
		}
		switch m := msg.(type) {
		case *wire.Ack:
			return nil
		case *wire.ClockSync:
			a.clock.SetMillis(m.MasterMillis + a.latencyComp)
			if err := a.conn.Send(&wire.ClockAck{AgentID: a.ID, AgentMillis: a.clock.NowMillis()}); err != nil {
				return fmt.Errorf("collect: %s clock ack: %w", a.ID, err)
			}
		default:
			return fmt.Errorf("collect: %s unexpected %T while awaiting ack", a.ID, msg)
		}
	}
}

// ClockSkewMillis exposes the agent clock's current error, for tests and
// telemetry.
func (a *Agent) ClockSkewMillis() int64 { return a.clock.SkewMillis() }

package collect

import (
	"fmt"
	"sort"
	"sync"

	"darnet/internal/durable"
)

// FrameSensorName is the reserved sensor channel name for camera frames.
// Readings on this channel carry W*H pixel values and are routed into the
// controller's frame store instead of the scalar time-series database.
const FrameSensorName = "frame"

// TimedFrame is one camera frame with its capture timestamp.
type TimedFrame struct {
	TimestampMillis int64
	Pix             []float64
}

// frameStore keeps per-agent frames ordered by timestamp.
type frameStore struct {
	mu     sync.RWMutex
	frames map[string][]TimedFrame
}

func newFrameStore() *frameStore {
	return &frameStore{frames: make(map[string][]TimedFrame)}
}

func (fs *frameStore) insert(agentID string, f TimedFrame) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	frames := fs.frames[agentID]
	i := sort.Search(len(frames), func(i int) bool {
		return frames[i].TimestampMillis > f.TimestampMillis
	})
	frames = append(frames, TimedFrame{})
	copy(frames[i+1:], frames[i:])
	frames[i] = f
	fs.frames[agentID] = frames
}

// FrameCount returns the number of stored frames for an agent.
func (c *Controller) FrameCount(agentID string) int {
	c.framesStore.mu.RLock()
	defer c.framesStore.mu.RUnlock()
	return len(c.framesStore.frames[agentID])
}

// Frames returns a copy of an agent's stored frames in timestamp order.
func (c *Controller) Frames(agentID string) []TimedFrame {
	c.framesStore.mu.RLock()
	defer c.framesStore.mu.RUnlock()
	src := c.framesStore.frames[agentID]
	out := make([]TimedFrame, len(src))
	for i, f := range src {
		out[i] = TimedFrame{
			TimestampMillis: f.TimestampMillis,
			Pix:             append([]float64(nil), f.Pix...),
		}
	}
	return out
}

// FrameNear returns the stored frame whose timestamp is closest to t — the
// cross-modality alignment step that pairs a camera frame with an IMU
// window for the fused classifier. maxSkewMillis bounds the acceptable
// distance; 0 accepts any frame.
func (c *Controller) FrameNear(agentID string, t int64, maxSkewMillis int64) (TimedFrame, error) {
	c.framesStore.mu.RLock()
	defer c.framesStore.mu.RUnlock()
	frames := c.framesStore.frames[agentID]
	if len(frames) == 0 {
		return TimedFrame{}, fmt.Errorf("collect: agent %q has no stored frames", agentID)
	}
	i := sort.Search(len(frames), func(i int) bool {
		return frames[i].TimestampMillis >= t
	})
	best := -1
	var bestDist int64
	for _, cand := range []int{i - 1, i} {
		if cand < 0 || cand >= len(frames) {
			continue
		}
		d := frames[cand].TimestampMillis - t
		if d < 0 {
			d = -d
		}
		if best == -1 || d < bestDist {
			best, bestDist = cand, d
		}
	}
	if maxSkewMillis > 0 && bestDist > maxSkewMillis {
		return TimedFrame{}, fmt.Errorf("collect: nearest frame of %q is %d ms from t=%d (max %d)", agentID, bestDist, t, maxSkewMillis)
	}
	f := frames[best]
	return TimedFrame{
		TimestampMillis: f.TimestampMillis,
		Pix:             append([]float64(nil), f.Pix...),
	}, nil
}

// FrameSnapshot captures every agent's stored frames, sorted by agent ID —
// the checkpoint writer's frame source (durable.Manager.SetFrameSource). It
// is called under the store lock during checkpoints and takes only the
// frame-store read lock; it must not touch c.mu or the DB.
func (c *Controller) FrameSnapshot() []durable.AgentFrames {
	c.framesStore.mu.RLock()
	defer c.framesStore.mu.RUnlock()
	out := make([]durable.AgentFrames, 0, len(c.framesStore.frames))
	for id, frames := range c.framesStore.frames {
		af := durable.AgentFrames{AgentID: id, Frames: make([]durable.Frame, len(frames))}
		for i, f := range frames {
			af.Frames[i] = durable.Frame{
				TimestampMillis: f.TimestampMillis,
				Pix:             append([]float64(nil), f.Pix...),
			}
		}
		out = append(out, af)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AgentID < out[j].AgentID })
	return out
}

// RestoreFrames seeds the frame store from recovered checkpoint and replay
// state, so a restarted controller still serves the camera frames whose
// batches it acked before the crash. Each frame goes through the sorted
// insert, so recovered and freshly arriving frames interleave correctly.
func (c *Controller) RestoreFrames(frames []durable.AgentFrames) {
	for _, af := range frames {
		for _, f := range af.Frames {
			c.framesStore.insert(af.AgentID, TimedFrame{
				TimestampMillis: f.TimestampMillis,
				Pix:             append([]float64(nil), f.Pix...),
			})
		}
	}
}

// FrameSensor adapts a frame source into a camera-agent sensor: each poll
// reads the current frame's pixels onto the reserved frame channel.
func FrameSensor(current func() []float64) Sensor {
	return SensorFunc{SensorName: FrameSensorName, ReadFunc: current}
}

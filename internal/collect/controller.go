package collect

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"darnet/internal/durable"
	"darnet/internal/telemetry"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

// Controller-plane metrics: ingest throughput and latency, the clock-sync
// loop's round trips, and the connected-agent population. The ingest span
// tree (darnet_ingest_batch → agent_read / store / clock_sync / ack) is
// what /tracez shows for a running darnetd.
var (
	gAgents   = telemetry.NewGauge("darnet_collect_agents_connected", "agent connections currently registered")
	mBatches  = telemetry.NewCounter("darnet_collect_batches_total", "sample batches ingested")
	mReadings = telemetry.NewCounter("darnet_collect_readings_total", "sensor readings ingested")
	mFrames   = telemetry.NewCounter("darnet_collect_frames_total", "camera frames routed to the frame store")
	mSyncs    = telemetry.NewCounter("darnet_collect_clock_syncs_total", "clock-sync exchanges completed")
	hIngest   = telemetry.NewHistogram("darnet_collect_ingest_seconds", "controller-side processing of one batch (store, sync, ack; excludes the wait for agent data)", nil)
	hSyncRTT  = telemetry.NewHistogram("darnet_collect_sync_rtt_seconds", "round-trip time of the clock-sync exchange", nil)
	gSkew     = telemetry.NewGauge("darnet_collect_clock_skew_millis", "residual agent clock skew at the most recent sync")
	hAlign    = telemetry.NewHistogram("darnet_collect_align_seconds", "resample + smooth of one series set", nil)

	// Fault-tolerance counters: every deduped replay, resumed session, served
	// heartbeat, and idle-reaped connection is an observable recovery event.
	mDeduped      = telemetry.NewCounter("darnet_collect_batches_deduped_total", "replayed batches dropped by sequence-number dedupe (at-least-once delivery)")
	mResumed      = telemetry.NewCounter("darnet_collect_sessions_resumed_total", "sessions resumed by a re-hello from a known agent ID")
	mHeartbeatsRx = telemetry.NewCounter("darnet_collect_heartbeats_total", "liveness heartbeats served")
	mIdleReaps    = telemetry.NewCounter("darnet_collect_idle_reaps_total", "connections reaped after missing the read deadline")

	// mStreamForwarded counts stored readings handed to the streaming classify
	// sink; the sink's own shed counters account for any it could not admit.
	mStreamForwarded = telemetry.NewCounter("darnet_collect_stream_forwarded_total", "stored readings offered to the streaming classification sink")

	// mCommitLogErrors counts batches whose durability commit mark could not be
	// appended. The batch is still acked — the WAL degrades to lossy rather
	// than stalling ingest — so this counter is the only trace that those acks
	// outran the log.
	mCommitLogErrors = telemetry.NewCounter("darnet_collect_commit_log_errors_total", "batches acked without a durable commit mark because the commit log errored")
)

// ErrIdleReaped marks a connection the controller abandoned because the
// agent went silent past the idle timeout; match with errors.Is.
var ErrIdleReaped = errors.New("collect: connection reaped after idle timeout")

// StreamSink receives stored readings for online classification and grants
// admission credits back. Offer is called once per stored batch and returns
// the refreshed credit grant alongside how many readings it admitted; Credits
// alone refreshes the grant on batchless exchanges (hello, heartbeat,
// replay). internal/stream.Mux satisfies this structurally, so collect never
// imports the classification layer.
//
// Credits are the end-to-end backpressure signal: the controller encodes the
// grant into every Ack (wire.EncodeCredits), the agent counts sends against
// it, and an exhausted agent defers flushes — its readings pool in the spill
// buffer, the protocol's single bounded shedding valve.
// Offer's trace argument is the controller-side stream_offer span's context
// (zero when the batch carried no trace context): the sink threads it to its
// asynchronous classify tick so the tick's span joins the same distributed
// trace, queue dwell included.
type StreamSink interface {
	Offer(agentID string, readings []wire.Reading, trace telemetry.SpanContext) (accepted int, credits uint32)
	Credits(agentID string) uint32
}

// CommitLog is the durability seam for batch ingest. AppendFrame logs a
// camera frame write-ahead (scalar points are logged by the store's own
// insert logger); AppendCommit records the batch's commit mark after its
// readings are stored and the dedupe high-water mark advanced. Both are
// append-only and are called inside the store critical section that makes a
// batch atomic with respect to checkpointing. SyncCommits is the durability
// point: the controller calls it after releasing the store lock and before
// acking, so under a strict fsync policy the ack only ever covers durable
// data. The mark is what makes replay idempotent: recovery only applies WAL
// records up to the last mark an agent earned, so a crash between store and
// mark loses nothing — the agent retransmits the unmarked batch and dedupe
// state restored from the mark admits it exactly once.
// internal/durable.Manager satisfies this structurally, so collect never
// imports the storage layer's manager.
type CommitLog interface {
	AppendFrame(agentID string, tsMillis int64, pix []float64) error
	AppendCommit(agentID string, seq uint64) error
	SyncCommits() error
}

// SyncPeriodMillis is how often the controller re-distributes its clock to
// each agent (paper §4.1: "this synchronization process is repeated every 5
// seconds").
const SyncPeriodMillis = 5000

// Controller is the centralized controller (paper §3.2): it aggregates
// readings from agents into a time-series store, acts as the clock-sync
// master, and aligns the collected streams for the analytics engine.
type Controller struct {
	db          *tsdb.DB
	source      TimeSource
	framesStore *frameStore

	mu          sync.Mutex
	agents      map[string]*agentState
	syncEach    int64
	idleTimeout time.Duration
	sink        StreamSink
	commitLog   CommitLog
}

type agentState struct {
	modality     string
	periodMillis uint32
	lastSyncAt   int64
	lastSkew     int64
	lastRTT      int64
	batches      int
	readings     int
	// lastSeq is the highest stored batch sequence number; replays at or
	// below it are deduped. It survives reconnects — the dedupe window is
	// the agent session, not the connection.
	lastSeq  uint64
	deduped  int
	sessions int
}

// NewController returns a controller storing into db and keeping master time
// from source.
func NewController(db *tsdb.DB, source TimeSource) *Controller {
	return &Controller{
		db:          db,
		source:      source,
		framesStore: newFrameStore(),
		agents:      make(map[string]*agentState),
		syncEach:    SyncPeriodMillis,
	}
}

// DB exposes the underlying time-series store.
func (c *Controller) DB() *tsdb.DB { return c.db }

// SetSyncPeriod overrides the clock re-sync period (tests use shorter ones).
func (c *Controller) SetSyncPeriod(millis int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncEach = millis
}

// SetIdleTimeout arms a per-read deadline on agent connections: a connection
// that delivers neither a batch nor a heartbeat within d is reaped
// (ServeConn returns ErrIdleReaped) instead of leaking its goroutine on a
// dead link. Zero (the default) disables reaping. The deadline uses the wall
// clock of the transport, independent of the controller's TimeSource.
func (c *Controller) SetIdleTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idleTimeout = d
}

// SetStreamSink routes every stored batch's readings into the online
// classification pipeline and starts attaching that pipeline's admission
// credits to every ack. Nil (the default) disables streaming: acks carry no
// credit signal and v2 agents behave exactly as before.
func (c *Controller) SetStreamSink(s StreamSink) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sink = s
}

// SetCommitLog installs (or, with nil, removes) the durability commit log.
// With a log installed, every stored batch appends a commit mark before its
// ack is sent, and controller restarts recover the dedupe high-water marks
// from the log's checkpoints and replay.
func (c *Controller) SetCommitLog(l CommitLog) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.commitLog = l
}

// commitLogRef snapshots the commit log under the lock.
func (c *Controller) commitLogRef() CommitLog {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commitLog
}

// SessionSnapshot captures every agent session's durable state, sorted by
// agent ID — the checkpoint writer's session source. The snapshot is taken
// under the controller lock, so it is consistent with the dedupe marks the
// commit log has already recorded.
func (c *Controller) SessionSnapshot() []durable.SessionState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]durable.SessionState, 0, len(c.agents))
	for id, st := range c.agents {
		out = append(out, durable.SessionState{
			AgentID:      id,
			Modality:     st.modality,
			PeriodMillis: st.periodMillis,
			LastSeq:      st.lastSeq,
			Batches:      st.batches,
			Readings:     st.readings,
			Deduped:      st.deduped,
			Sessions:     st.sessions,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AgentID < out[j].AgentID })
	return out
}

// RestoreSessions seeds agent sessions from recovered checkpoint state, so a
// restarted controller still dedupes batches that resumed agents retransmit.
// Sessions already registered (an agent reconnected before restore ran) keep
// their live state; restore never moves a high-water mark backwards.
func (c *Controller) RestoreSessions(sess []durable.SessionState) {
	now := c.source()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range sess {
		if _, ok := c.agents[s.AgentID]; ok {
			continue
		}
		c.agents[s.AgentID] = &agentState{
			modality:     s.Modality,
			periodMillis: s.PeriodMillis,
			lastSyncAt:   now,
			lastSeq:      s.LastSeq,
			batches:      s.Batches,
			readings:     s.Readings,
			deduped:      s.Deduped,
			sessions:     s.Sessions,
		}
	}
}

// streamSink snapshots the sink under the lock.
func (c *Controller) streamSink() StreamSink {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sink
}

// creditsFor returns the wire-encoded admission grant for an ack: the absent
// marker when no sink is configured, the sink's current grant otherwise.
func (c *Controller) creditsFor(agentID string) uint32 {
	sink := c.streamSink()
	if sink == nil {
		return 0 // no signal: legacy unlimited
	}
	return wire.EncodeCredits(sink.Credits(agentID))
}

// armDeadline pushes the idle deadline out before a blocking read.
func (c *Controller) armDeadline(conn *wire.Conn) {
	c.mu.Lock()
	d := c.idleTimeout
	c.mu.Unlock()
	if d > 0 {
		//lint:ignore errdrop transports without deadlines no-op; the Recv error is authoritative
		conn.SetReadDeadline(time.Now().Add(d))
	}
}

// AgentIDs returns the registered agent identifiers.
func (c *Controller) AgentIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.agents))
	for id := range c.agents {
		out = append(out, id)
	}
	return out
}

// Stats summarizes one agent's session.
type Stats struct {
	Modality     string
	Batches      int
	Readings     int
	LastSkewMill int64
	// LastRTTMillis is the round-trip time measured during the most recent
	// clock-sync exchange — the controller's empirical basis for the latency
	// compensation agents apply (§4.1 "plus the empirically measured network
	// delay").
	LastRTTMillis int64
	// LastSeq is the highest stored batch sequence number; Deduped counts
	// replayed batches dropped below it. Sessions counts connections that
	// carried this agent ID, so Sessions-1 is the number of resumes.
	LastSeq  uint64
	Deduped  int
	Sessions int
}

// AgentStats returns per-agent session statistics.
func (c *Controller) AgentStats(id string) (Stats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.agents[id]
	if !ok {
		return Stats{}, false
	}
	return Stats{
		Modality:      st.modality,
		Batches:       st.batches,
		Readings:      st.readings,
		LastSkewMill:  st.lastSkew,
		LastRTTMillis: st.lastRTT,
		LastSeq:       st.lastSeq,
		Deduped:       st.deduped,
		Sessions:      st.sessions,
	}, true
}

// ServeConn runs the controller side of the protocol for one agent
// connection until the agent disconnects (io.EOF), a protocol error occurs,
// or the idle timeout reaps it. It is safe to call concurrently for multiple
// connections.
//
// A Hello carrying a known agent ID resumes that agent's session: batch
// statistics and — critically — the dedupe sequence state carry over, so a
// batch the agent retransmits after reconnecting is recognized as a replay
// (its sequence number is not above the last stored one), acked, and
// dropped without storing duplicate rows. Heartbeats keep idle connections
// alive under the read deadline.
//
// Every batch is traced as a darnet_ingest_batch span — joined to the
// agent's flush trace when the batch carries a v4 trace context — with
// agent_read and wire_transit segments, a dedupe segment, and store,
// stream_offer, clock_sync, and ack children; traces abandoned by a
// disconnect mid-iteration are dropped rather than published incomplete.
func (c *Controller) ServeConn(conn *wire.Conn) error {
	c.armDeadline(conn)
	msg, err := conn.Recv()
	if err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			mIdleReaps.Inc()
			return fmt.Errorf("%w: silent before hello", ErrIdleReaped)
		}
		return fmt.Errorf("collect: controller handshake: %w", err)
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		return fmt.Errorf("collect: expected hello, got %T", msg)
	}
	c.mu.Lock()
	st, resumed := c.agents[hello.AgentID]
	if resumed {
		// Session resume: refresh the link parameters, keep the sequence and
		// accounting state the dedupe depends on.
		st.modality = hello.Modality
		st.periodMillis = hello.PeriodMillis
	} else {
		st = &agentState{
			modality:     hello.Modality,
			periodMillis: hello.PeriodMillis,
			lastSyncAt:   c.source(),
		}
		c.agents[hello.AgentID] = st
	}
	st.sessions++
	c.mu.Unlock()
	if resumed {
		mResumed.Inc()
	}
	if err := conn.Send(&wire.Ack{Credits: c.creditsFor(hello.AgentID)}); err != nil {
		return fmt.Errorf("collect: hello ack: %w", err)
	}
	gAgents.Add(1)
	defer gAgents.Add(-1)

	for {
		readStart := time.Now()
		c.armDeadline(conn)
		msg, err := conn.Recv()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			if errors.Is(err, os.ErrDeadlineExceeded) {
				mIdleReaps.Inc()
				return fmt.Errorf("%w: agent %s silent past the deadline", ErrIdleReaped, hello.AgentID)
			}
			return fmt.Errorf("collect: controller recv: %w", err)
		}
		ingestStart := time.Now()
		if hb, ok := msg.(*wire.Heartbeat); ok {
			if hb.AgentID != hello.AgentID {
				return fmt.Errorf("collect: heartbeat from %q on connection of %q", hb.AgentID, hello.AgentID)
			}
			if err := conn.Send(&wire.Ack{Credits: c.creditsFor(hello.AgentID)}); err != nil {
				return fmt.Errorf("collect: heartbeat ack: %w", err)
			}
			mHeartbeatsRx.Inc()
			continue
		}
		batch, ok := msg.(*wire.SampleBatch)
		if !ok {
			return fmt.Errorf("collect: expected sample batch or heartbeat, got %T", msg)
		}
		if batch.AgentID != hello.AgentID {
			return fmt.Errorf("collect: batch from %q on connection of %q", batch.AgentID, hello.AgentID)
		}
		// The ingest root joins the agent's flush trace when the batch carried
		// a v4 trace context (legacy batches degrade to a locally sampled
		// root). The blocking wait for the frame and — when the sender stamped
		// its hand-off — the wire-transit interval become explicit segments.
		root := telemetry.DefaultTracer.JoinRemote("darnet_ingest_batch", batch.Trace)
		root.Segment("darnet_stage_agent_read", readStart, ingestStart.Sub(readStart))
		if batch.Trace.SentUnixNano != 0 {
			sentAt := time.Unix(0, batch.Trace.SentUnixNano)
			root.Segment("darnet_stage_wire_transit", sentAt, ingestStart.Sub(sentAt))
		}
		// At-least-once delivery: a sequence number at or below the last
		// stored one is a replay of a batch whose ack was lost. Ack it again
		// (so the agent advances) but store nothing.
		dedupeStart := time.Now()
		c.mu.Lock()
		dup := batch.Seq != 0 && batch.Seq <= st.lastSeq
		if dup {
			st.deduped++
		}
		c.mu.Unlock()
		root.Segment("darnet_stage_dedupe", dedupeStart, time.Since(dedupeStart))
		if dup {
			if err := conn.Send(&wire.Ack{Seq: batch.Seq, Credits: c.creditsFor(hello.AgentID)}); err != nil {
				return fmt.Errorf("collect: replay ack: %w", err)
			}
			mDeduped.Inc()
			root.End()
			continue
		}
		// The whole batch — frame log records, frame-store inserts, scalar
		// points, the session advance, and the commit mark — is stored inside
		// one store critical section (tsdb.DB.Update). Checkpoints rotate the
		// WAL and snapshot the frame store under that same lock, so a
		// checkpoint boundary lands entirely before or entirely after the
		// batch: it can never durably capture part of the batch's rows with a
		// LastSeq that does not cover them, which is what would turn the
		// agent's retransmission into duplicate rows after a crash.
		storeSp := root.StartChild("darnet_stage_store")
		cl := c.commitLogRef()
		frames := 0
		var markErr error
		c.db.Update(func(insert func(series string, p tsdb.Point)) {
			for _, rd := range batch.Readings {
				// Camera frames carry W*H pixels and go to the frame store;
				// scalar sensor channels go to the time-series database per
				// axis. Frames are logged write-ahead here because the commit
				// mark dedupes the whole batch — an acked frame that could not
				// replay would be permanently lost.
				if rd.Sensor == FrameSensorName {
					pix := append([]float64(nil), rd.Values...)
					if cl != nil {
						if err := cl.AppendFrame(batch.AgentID, rd.TimestampMillis, pix); err != nil && markErr == nil {
							markErr = err
						}
					}
					c.framesStore.insert(batch.AgentID, TimedFrame{
						TimestampMillis: rd.TimestampMillis,
						Pix:             pix,
					})
					frames++
					continue
				}
				series := SeriesName(batch.AgentID, rd.Sensor)
				for axis, v := range rd.Values {
					insert(fmt.Sprintf("%s[%d]", series, axis), tsdb.Point{
						TimestampMillis: rd.TimestampMillis,
						Value:           v,
					})
				}
			}
			c.mu.Lock()
			st.batches++
			st.readings += len(batch.Readings)
			if batch.Seq > st.lastSeq {
				st.lastSeq = batch.Seq
			}
			c.mu.Unlock()
			// Commit mark: the dedupe high-water mark above is already
			// advanced, so the mark the log records never exceeds the state a
			// checkpoint would snapshot. Legacy Seq==0 batches still append
			// one as a replay flush marker. An append failure degrades
			// durability, never availability: count it and keep serving.
			if cl != nil {
				if err := cl.AppendCommit(batch.AgentID, batch.Seq); err != nil && markErr == nil {
					markErr = err
				}
			}
		})
		storeSp.End()
		// Group commit outside the store lock: the mark must be durable
		// before the ack below — recovery promises every acked batch survives
		// — but the fsync must not stall concurrent inserts.
		if markErr != nil {
			mCommitLogErrors.Inc()
		} else if cl != nil {
			if err := cl.SyncCommits(); err != nil {
				mCommitLogErrors.Inc()
			}
		}

		// Hand the stored readings to the streaming classify sink and fold its
		// refreshed admission grant into the batch ack. The sink sheds (and
		// counts) whatever its bounded queue cannot admit — storage above is
		// unconditional, so backpressure never loses archived data.
		ackCredits := uint32(0)
		if sink := c.streamSink(); sink != nil {
			offerSp := root.StartChild("darnet_stage_stream_offer")
			// The offer span's context rides into the sink's queue so the
			// asynchronous classify tick joins this trace (queue dwell and all).
			_, grant := sink.Offer(batch.AgentID, batch.Readings, offerSp.Context())
			offerSp.End()
			mStreamForwarded.Add(int64(len(batch.Readings)))
			ackCredits = wire.EncodeCredits(grant)
		}

		now := c.source()
		c.mu.Lock()
		needSync := now-st.lastSyncAt >= c.syncEach
		if needSync {
			st.lastSyncAt = now
		}
		c.mu.Unlock()

		// Clock synchronization piggybacks on the batch exchange: the
		// controller pushes its UTC, waits for the agent's resulting clock,
		// and records the residual skew.
		if needSync {
			syncSp := root.StartChild("darnet_stage_clock_sync")
			sentAt := c.source()
			if err := conn.Send(&wire.ClockSync{MasterMillis: now}); err != nil {
				return fmt.Errorf("collect: send clock sync: %w", err)
			}
			reply, err := conn.Recv()
			if err != nil {
				return fmt.Errorf("collect: await clock ack: %w", err)
			}
			ack, ok := reply.(*wire.ClockAck)
			if !ok {
				return fmt.Errorf("collect: expected clock ack, got %T", reply)
			}
			rtt := c.source() - sentAt
			skew := ack.AgentMillis - c.source()
			c.mu.Lock()
			st.lastRTT = rtt
			st.lastSkew = skew
			c.mu.Unlock()
			syncSp.End()
			mSyncs.Inc()
			hSyncRTT.Observe(float64(rtt) / 1000)
			gSkew.Set(float64(skew))
		}
		ackSp := root.StartChild("darnet_stage_ack")
		if err := conn.Send(&wire.Ack{Count: uint32(len(batch.Readings)), Seq: batch.Seq, Credits: ackCredits}); err != nil {
			return fmt.Errorf("collect: batch ack: %w", err)
		}
		ackSp.End()
		mBatches.Inc()
		mReadings.Add(int64(len(batch.Readings)))
		mFrames.Add(int64(frames))
		hIngest.ObserveSince(ingestStart)
		root.End()
	}
}

// SeriesName returns the time-series name for one agent sensor channel.
func SeriesName(agentID, sensor string) string {
	return agentID + "/" + sensor
}

// AlignConfig describes the common grid the controller resamples all series
// onto before handing data to the analytics engine (§3.2 "Data
// Normalization").
type AlignConfig struct {
	FromMillis   int64
	ToMillis     int64
	StepMillis   int64
	SmoothWindow int // odd moving-average width; 1 disables smoothing
}

// Aligned holds resampled, smoothed, time-aligned channels.
type Aligned struct {
	Series []string
	Step   int64
	From   int64
	Values [][]float64 // Values[i] corresponds to Series[i]
}

// Align resamples the named series (full channel names, including the axis
// suffix) onto a common grid with linear interpolation and applies
// moving-average smoothing.
func (c *Controller) Align(series []string, cfg AlignConfig) (*Aligned, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("collect: align needs at least one series")
	}
	if cfg.SmoothWindow <= 0 {
		cfg.SmoothWindow = 1
	}
	defer hAlign.ObserveSince(time.Now())
	out := &Aligned{Series: append([]string(nil), series...), Step: cfg.StepMillis, From: cfg.FromMillis}
	for _, s := range series {
		vals, err := c.db.ResampleLinear(s, cfg.FromMillis, cfg.ToMillis, cfg.StepMillis)
		if err != nil {
			return nil, fmt.Errorf("collect: align %q: %w", s, err)
		}
		if cfg.SmoothWindow > 1 {
			vals, err = tsdb.SmoothMovingAverage(vals, cfg.SmoothWindow)
			if err != nil {
				return nil, err
			}
		}
		out.Values = append(out.Values, vals)
	}
	return out, nil
}

// ProcessingMode is where the analytics run (§3.2 "Processing Decision").
type ProcessingMode int

// Processing modes.
const (
	ProcessLocal ProcessingMode = iota + 1
	ProcessRemote
)

// String implements fmt.Stringer.
func (m ProcessingMode) String() string {
	switch m {
	case ProcessLocal:
		return "local"
	case ProcessRemote:
		return "remote"
	default:
		return fmt.Sprintf("ProcessingMode(%d)", int(m))
	}
}

// NetworkConditions summarize the controller's view of the uplink.
type NetworkConditions struct {
	BandwidthKbps float64
	LatencyMillis float64
}

// ProcessingPolicy decides between local and remote processing and, for the
// remote path, which privacy/down-sampling level to request given bandwidth
// (§3.2, §4.3).
type ProcessingPolicy struct {
	// MinRemoteKbps is the bandwidth below which processing stays local.
	MinRemoteKbps float64
	// MaxRemoteLatencyMillis is the latency above which processing stays local.
	MaxRemoteLatencyMillis float64
	// FullResKbps is the bandwidth needed to ship full-resolution frames;
	// below it the policy requests increasing down-sampling.
	FullResKbps float64
}

// DefaultProcessingPolicy returns a policy with sensible thresholds.
func DefaultProcessingPolicy() ProcessingPolicy {
	return ProcessingPolicy{
		MinRemoteKbps:          16,
		MaxRemoteLatencyMillis: 400,
		FullResKbps:            2000,
	}
}

// DistortionLevel is the privacy down-sampling level of §4.3.
type DistortionLevel int

// Distortion levels: none ships full resolution; low/medium/high correspond
// to the paper's 100×100 / 50×50 / 25×25 paths.
const (
	DistortNone DistortionLevel = iota
	DistortLow
	DistortMedium
	DistortHigh
)

// String implements fmt.Stringer.
func (d DistortionLevel) String() string {
	switch d {
	case DistortNone:
		return "none"
	case DistortLow:
		return "low"
	case DistortMedium:
		return "medium"
	case DistortHigh:
		return "high"
	default:
		return fmt.Sprintf("DistortionLevel(%d)", int(d))
	}
}

// Decide returns the processing mode and, for remote processing, the
// distortion level that fits the available bandwidth.
func (p ProcessingPolicy) Decide(net NetworkConditions) (ProcessingMode, DistortionLevel) {
	if net.BandwidthKbps < p.MinRemoteKbps || net.LatencyMillis > p.MaxRemoteLatencyMillis {
		return ProcessLocal, DistortNone
	}
	// Down-sampling to 100×100 / 50×50 / 25×25 shrinks a 300×300 frame by
	// roughly 9× / 36× / 144× (§4.3), so each level needs proportionally
	// less bandwidth.
	switch {
	case net.BandwidthKbps >= p.FullResKbps:
		return ProcessRemote, DistortNone
	case net.BandwidthKbps >= p.FullResKbps/9:
		return ProcessRemote, DistortLow
	case net.BandwidthKbps >= p.FullResKbps/36:
		return ProcessRemote, DistortMedium
	default:
		return ProcessRemote, DistortHigh
	}
}

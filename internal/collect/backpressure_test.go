package collect

import (
	"net"
	"sync"
	"testing"
	"time"

	"darnet/internal/telemetry"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

// fakeSink is a scriptable StreamSink: it records offered readings and
// grants whatever credits the test sets.
type fakeSink struct {
	mu      sync.Mutex
	grant   uint32
	offered []wire.Reading
	agents  map[string]int
}

func newFakeSink(grant uint32) *fakeSink {
	return &fakeSink{grant: grant, agents: make(map[string]int)}
}

func (s *fakeSink) Offer(agentID string, readings []wire.Reading, _ telemetry.SpanContext) (int, uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.offered = append(s.offered, readings...)
	s.agents[agentID] += len(readings)
	return len(readings), s.grant
}

func (s *fakeSink) Credits(string) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.grant
}

func (s *fakeSink) setGrant(n uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grant = n
}

func (s *fakeSink) offeredCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.offered)
}

func bpSensors() []Sensor {
	return []Sensor{SensorFunc{SensorName: "accel", ReadFunc: func() []float64 { return []float64{1, 2, 3} }}}
}

// startBPController serves one connection of a sink-equipped controller and
// returns the agent-side conn.
func startBPController(t *testing.T, sink StreamSink) (*Controller, *wire.Conn) {
	t.Helper()
	ctrl := NewController(tsdb.New(), wallMillis)
	if sink != nil {
		ctrl.SetStreamSink(sink)
	}
	aRaw, cRaw := net.Pipe()
	go func() { ctrl.ServeConn(wire.NewConn(cRaw)) }()
	t.Cleanup(func() { aRaw.Close() })
	return ctrl, wire.NewConn(aRaw)
}

// TestCreditPropagation runs the full loop: the sink's grant rides the hello
// ack, every stored batch is offered to the sink, and the batch ack's
// refreshed grant lands in the agent.
func TestCreditPropagation(t *testing.T) {
	sink := newFakeSink(7)
	_, conn := startBPController(t, sink)
	agent, err := NewAgent(AgentConfig{ID: "bp1", Modality: "imu"}, NewDriftClock(wallMillis, 0), bpSensors(), conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Hello(); err != nil {
		t.Fatal(err)
	}
	if n, ok := agent.Credits(); !ok || n != 7 {
		t.Fatalf("credits after hello = %d ok=%v, want 7 true", n, ok)
	}

	agent.Poll()
	sink.setGrant(3)
	if err := agent.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sink.offeredCount(); got != 1 {
		t.Fatalf("sink received %d readings, want 1", got)
	}
	if n, ok := agent.Credits(); !ok || n != 3 {
		t.Fatalf("credits after flush = %d ok=%v, want 3 true", n, ok)
	}

	// Heartbeats refresh the grant without carrying data.
	sink.setGrant(9)
	if err := agent.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if n, _ := agent.Credits(); n != 9 {
		t.Fatalf("credits after heartbeat = %d, want 9", n)
	}
	if agent.ShouldDefer() {
		t.Fatal("agent with a positive grant must not defer")
	}
}

// TestZeroCreditDeferral drives the grant to zero and asserts the agent
// defers new batches but still retransmits an in-flight one, then resumes
// when a heartbeat brings a fresh grant.
func TestZeroCreditDeferral(t *testing.T) {
	sink := newFakeSink(0)
	_, conn := startBPController(t, sink)
	agent, err := NewAgent(AgentConfig{ID: "bp2", Modality: "imu"}, NewDriftClock(wallMillis, 0), bpSensors(), conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Hello(); err != nil {
		t.Fatal(err)
	}
	if n, ok := agent.Credits(); !ok || n != 0 {
		t.Fatalf("credits after hello = %d ok=%v, want 0 true", n, ok)
	}
	if agent.ShouldDefer() {
		t.Fatal("nothing pending and nothing to freeze yet — defer is about freezing new batches")
	}
	agent.Poll()
	if !agent.ShouldDefer() {
		t.Fatal("zero grant with buffered readings must defer")
	}

	// Deferral is advisory: an explicit Flush still works (shutdown path),
	// and an in-flight batch would be retransmitted regardless.
	sink.setGrant(5)
	if err := agent.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if agent.ShouldDefer() {
		t.Fatal("refreshed grant must lift the deferral")
	}
	if err := agent.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sink.offeredCount(); got != 1 {
		t.Fatalf("sink received %d readings, want 1", got)
	}
}

// TestLegacyControllerNoCredits: without a sink the acks carry no signal and
// the agent never defers — protocol v2 behavior is unchanged.
func TestLegacyControllerNoCredits(t *testing.T) {
	_, conn := startBPController(t, nil)
	agent, err := NewAgent(AgentConfig{ID: "bp3", Modality: "imu"}, NewDriftClock(wallMillis, 0), bpSensors(), conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Hello(); err != nil {
		t.Fatal(err)
	}
	if _, ok := agent.Credits(); ok {
		t.Fatal("legacy controller must not deliver a grant")
	}
	agent.Poll()
	if agent.ShouldDefer() {
		t.Fatal("agent must never defer without an explicit grant")
	}
	if err := agent.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestRunnerDefersUnderZeroCredits runs the managed loop against a
// zero-grant controller and asserts flush ticks turn into heartbeats while
// readings pool in the spill buffer, then drain once the grant returns.
func TestRunnerDefersUnderZeroCredits(t *testing.T) {
	sink := newFakeSink(0)
	_, conn := startBPController(t, sink)
	agent, err := NewAgent(AgentConfig{ID: "bp4", Modality: "imu", PollPeriodMS: 2}, NewDriftClock(wallMillis, 0), bpSensors(), conn)
	if err != nil {
		t.Fatal(err)
	}
	r, err := StartRunnerConfig(agent, RunnerConfig{FlushEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.Deferred() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if r.Deferred() < 2 {
		t.Fatalf("runner deferred %d flush ticks, want ≥ 2", r.Deferred())
	}
	if got := sink.offeredCount(); got != 0 {
		t.Fatalf("sink received %d readings while grant was zero", got)
	}

	sink.setGrant(100)
	for sink.offeredCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := r.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if sink.offeredCount() == 0 {
		t.Fatal("backlog never drained after the grant returned")
	}
}

package collect

import (
	"net"
	"testing"

	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

func TestFrameStoreOrderingAndCopy(t *testing.T) {
	mt := NewManualTime(0)
	ctrl := NewController(tsdb.New(), mt.Now)
	for _, ts := range []int64{300, 100, 200} {
		ctrl.framesStore.insert("cam", TimedFrame{TimestampMillis: ts, Pix: []float64{float64(ts)}})
	}
	frames := ctrl.Frames("cam")
	if len(frames) != 3 {
		t.Fatalf("got %d frames", len(frames))
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].TimestampMillis < frames[i-1].TimestampMillis {
			t.Fatal("frames out of order")
		}
	}
	// Returned frames must be copies.
	frames[0].Pix[0] = 999
	if ctrl.Frames("cam")[0].Pix[0] == 999 {
		t.Fatal("Frames returned aliased storage")
	}
	if ctrl.FrameCount("cam") != 3 {
		t.Fatalf("FrameCount = %d", ctrl.FrameCount("cam"))
	}
}

func TestFrameNear(t *testing.T) {
	mt := NewManualTime(0)
	ctrl := NewController(tsdb.New(), mt.Now)
	for _, ts := range []int64{100, 200, 300} {
		ctrl.framesStore.insert("cam", TimedFrame{TimestampMillis: ts, Pix: []float64{float64(ts)}})
	}
	tests := []struct {
		t    int64
		want int64
	}{
		{0, 100},
		{100, 100},
		{149, 100},
		{151, 200},
		{250, 200}, // ties break toward the earlier frame
		{999, 300},
	}
	for _, tt := range tests {
		f, err := ctrl.FrameNear("cam", tt.t, 0)
		if err != nil {
			t.Fatal(err)
		}
		if f.TimestampMillis != tt.want {
			t.Fatalf("FrameNear(%d) = %d, want %d", tt.t, f.TimestampMillis, tt.want)
		}
	}
	if _, err := ctrl.FrameNear("cam", 1000, 100); err == nil {
		t.Fatal("expected max-skew error")
	}
	if _, err := ctrl.FrameNear("ghost", 0, 0); err == nil {
		t.Fatal("expected no-frames error")
	}
}

func TestCameraAgentRoutesFramesToStore(t *testing.T) {
	mt := NewManualTime(5_000)
	db := tsdb.New()
	ctrl := NewController(db, mt.Now)
	aRaw, cRaw := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ctrl.ServeConn(wire.NewConn(cRaw)) }()

	clock := NewDriftClock(mt.Now, 0)
	frameIdx := 0.0
	sensors := []Sensor{
		FrameSensor(func() []float64 {
			frameIdx++
			pix := make([]float64, 16)
			pix[0] = frameIdx
			return pix
		}),
		SensorFunc{SensorName: "lux", ReadFunc: func() []float64 { return []float64{0.8} }},
	}
	agent, err := NewAgent(AgentConfig{ID: "cam", Modality: "camera", PollPeriodMS: 100}, clock, sensors, wire.NewConn(aRaw))
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Hello(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		agent.Poll()
		mt.Advance(100)
	}
	if err := agent.Flush(); err != nil {
		t.Fatal(err)
	}
	aRaw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Frames landed in the frame store, not the scalar database.
	if got := ctrl.FrameCount("cam"); got != 5 {
		t.Fatalf("frame count = %d, want 5", got)
	}
	if db.Len("cam/frame[0]") != 0 {
		t.Fatal("frame pixels leaked into the time-series database")
	}
	// Scalar channel still went to the database.
	if db.Len("cam/lux[0]") != 5 {
		t.Fatalf("lux series has %d points", db.Len("cam/lux[0]"))
	}
	f, err := ctrl.FrameNear("cam", 5_200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Pix) != 16 {
		t.Fatalf("frame has %d pixels", len(f.Pix))
	}
}

// Package collect implements DarNet's data collection middleware (paper §3,
// §4.1): collection agents that poll sensors on a fixed period, stamp
// readings with a local (drifting) clock, and batch them to a centralized
// controller; and the controller itself, which aggregates readings into a
// time-series store, distributes its UTC clock to agents every sync period
// with latency compensation, and aligns the streams onto a common grid with
// interpolation and moving-average smoothing.
package collect

import (
	"fmt"
	"math"
	"sync"
)

// TimeSource yields the true reference time in milliseconds. Tests use a
// manually advanced source; deployments use wall time.
type TimeSource func() int64

// DriftClock simulates a device clock that drifts relative to true time — the
// "system clock is highly susceptible to drift" condition that motivates the
// paper's 5-second re-synchronization. The clock reads
//
//	offset + (true - trueAtSet) * (1 + drift)
//
// and Set re-anchors the offset (the agent-side effect of a ClockSync).
type DriftClock struct {
	mu        sync.Mutex
	source    TimeSource
	drift     float64 // fractional rate error, e.g. 2e-4 = 0.2 ms/s
	offset    int64
	trueAtSet int64
}

// NewDriftClock returns a clock over the given source with the given
// fractional drift, initially synchronized to the source.
func NewDriftClock(source TimeSource, drift float64) *DriftClock {
	now := source()
	return &DriftClock{source: source, drift: drift, offset: now, trueAtSet: now}
}

// NowMillis returns the clock's current (drifted) reading.
func (c *DriftClock) NowMillis() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := float64(c.source() - c.trueAtSet)
	return c.offset + int64(math.Round(elapsed*(1+c.drift)))
}

// SetMillis re-anchors the clock to the given reading, as an agent does when
// it receives the controller's ClockSync (master time plus measured network
// delay, §4.1).
func (c *DriftClock) SetMillis(t int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.offset = t
	c.trueAtSet = c.source()
}

// SkewMillis returns the clock's current error relative to true time.
func (c *DriftClock) SkewMillis() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := float64(c.source() - c.trueAtSet)
	return c.offset + int64(math.Round(elapsed*(1+c.drift))) - c.source()
}

// ManualTime is a test-friendly TimeSource advanced explicitly.
type ManualTime struct {
	mu  sync.Mutex
	now int64
}

// NewManualTime returns a manual source starting at start.
func NewManualTime(start int64) *ManualTime {
	return &ManualTime{now: start}
}

// Now implements TimeSource.
func (m *ManualTime) Now() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves time forward by d milliseconds. It panics on negative d,
// which indicates a test bug.
func (m *ManualTime) Advance(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("collect: cannot advance time by %d", d))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now += d
}

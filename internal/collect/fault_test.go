package collect

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

// pipeSensors returns a single one-value sensor list for fault tests.
func faultSensors() []Sensor {
	v := 0.0
	return []Sensor{SensorFunc{SensorName: "s", ReadFunc: func() []float64 {
		v++
		return []float64{v}
	}}}
}

// serveController starts a controller serving every connection handed to it
// and returns a dialer producing fresh agent-side connections.
func serveController(t *testing.T, ctrl *Controller) Dialer {
	t.Helper()
	return func() (*wire.Conn, error) {
		aRaw, cRaw := net.Pipe()
		go func() {
			//lint:ignore errdrop chaos sessions die by design; assertions run on stored data
			ctrl.ServeConn(wire.NewConn(cRaw))
		}()
		return wire.NewConn(aRaw), nil
	}
}

func TestShutdownIdempotentAndConcurrent(t *testing.T) {
	db := tsdb.New()
	ctrl := NewController(db, wallMillis)
	dial := serveController(t, ctrl)
	conn, _ := dial()
	clock := NewDriftClock(wallMillis, 0)
	agent, err := NewAgent(AgentConfig{ID: "idem", Modality: "imu", PollPeriodMS: 5}, clock, faultSensors(), conn)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := StartRunner(agent, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runner.Shutdown()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Fatalf("Shutdown call %d returned %v, call 0 returned %v — not idempotent", i, err, errs[0])
		}
	}
	if got := runner.Err(); got != errs[0] {
		t.Fatalf("Err() = %v after Shutdown() = %v", got, errs[0])
	}
	// A late Shutdown after the loop is long gone is still safe.
	if err := runner.Shutdown(); err != errs[0] {
		t.Fatalf("post-mortem Shutdown = %v, want %v", err, errs[0])
	}
}

func TestRunnerReconnectsWithBackoff(t *testing.T) {
	db := tsdb.New()
	ctrl := NewController(db, wallMillis)
	dial := serveController(t, ctrl)
	conn, _ := dial()
	clock := NewDriftClock(wallMillis, 0)
	agent, err := NewAgent(AgentConfig{ID: "rc", Modality: "imu", PollPeriodMS: 5, AckTimeout: time.Second}, clock, faultSensors(), conn)
	if err != nil {
		t.Fatal(err)
	}
	before := mReconnects.Value()
	runner, err := StartRunnerConfig(agent, RunnerConfig{
		FlushEvery:  15 * time.Millisecond,
		Dialer:      dial,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	// Sever the link out from under the runner: the next flush fails and the
	// reconnect path must bring a fresh session up.
	conn.Close()
	deadline := time.After(5 * time.Second)
	for runner.Reconnects() == 0 {
		select {
		case <-deadline:
			t.Fatalf("no reconnect after severed link; runner err = %v", runner.Err())
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	// Data keeps flowing on the new session.
	wasStored := db.Len("rc/s[0]")
	deadline = time.After(5 * time.Second)
	for db.Len("rc/s[0]") <= wasStored {
		select {
		case <-deadline:
			t.Fatal("no new readings stored after reconnect")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := runner.Shutdown(); err != nil {
		t.Fatalf("shutdown after recovery: %v", err)
	}
	if got := mReconnects.Value() - before; got < 1 {
		t.Fatalf("darnet_collect_reconnects_total moved by %d, want >= 1", got)
	}
	st, ok := ctrl.AgentStats("rc")
	if !ok {
		t.Fatal("agent unknown to controller")
	}
	if st.Sessions < 2 {
		t.Fatalf("sessions = %d, want >= 2 (resume after reconnect)", st.Sessions)
	}
}

func TestRunnerGivesUpAfterMaxAttempts(t *testing.T) {
	db := tsdb.New()
	ctrl := NewController(db, wallMillis)
	dial := serveController(t, ctrl)
	conn, _ := dial()
	clock := NewDriftClock(wallMillis, 0)
	agent, err := NewAgent(AgentConfig{ID: "gu", Modality: "imu", PollPeriodMS: 5, AckTimeout: 50 * time.Millisecond}, clock, faultSensors(), conn)
	if err != nil {
		t.Fatal(err)
	}
	dialErr := errors.New("dial refused")
	runner, err := StartRunnerConfig(agent, RunnerConfig{
		FlushEvery:  10 * time.Millisecond,
		Dialer:      func() (*wire.Conn, error) { return nil, dialErr },
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	deadline := time.After(5 * time.Second)
	for runner.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("runner never gave up")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if got := runner.Shutdown(); !errors.Is(got, dialErr) {
		t.Fatalf("give-up error = %v, want wrap of the dial error", got)
	}
}

func TestSpillBufferDropsOldestFirst(t *testing.T) {
	clock := NewDriftClock(NewManualTime(0).Now, 0)
	mt := NewManualTime(0)
	clock = NewDriftClock(mt.Now, 0)
	agent, err := NewAgent(AgentConfig{ID: "sp", MaxSpill: 3}, clock, faultSensors(), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := mSpillDropped.Value()
	for i := 0; i < 5; i++ {
		agent.Poll()
		mt.Advance(10)
	}
	if got := agent.Buffered(); got != 3 {
		t.Fatalf("buffered = %d, want the MaxSpill bound 3", got)
	}
	if got := agent.SpillDropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if got := mSpillDropped.Value() - before; got != 2 {
		t.Fatalf("darnet_collect_spill_dropped_total moved by %d, want 2", got)
	}
	// Oldest first: the survivors are the three most recent polls (t=20,30,40).
	if ts := agent.buf[0].TimestampMillis; ts != 20 {
		t.Fatalf("oldest surviving reading at t=%d, want 20", ts)
	}
	// Unbounded agents never drop.
	unbounded, err := NewAgent(AgentConfig{ID: "un", MaxSpill: -1}, clock, faultSensors(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DefaultMaxSpill+10; i++ {
		unbounded.Poll()
	}
	if got := unbounded.SpillDropped(); got != 0 {
		t.Fatalf("unbounded agent dropped %d readings", got)
	}
}

// dialAndHello opens a raw wire session against the controller and completes
// the handshake, returning the agent-side conn.
func dialAndHello(t *testing.T, ctrl *Controller, id string) *wire.Conn {
	t.Helper()
	aRaw, cRaw := net.Pipe()
	go func() {
		//lint:ignore errdrop handshake-only sessions are torn down by the test
		ctrl.ServeConn(wire.NewConn(cRaw))
	}()
	conn := wire.NewConn(aRaw)
	if err := conn.Send(&wire.Hello{AgentID: id, Modality: "imu", PeriodMillis: 25}); err != nil {
		t.Fatal(err)
	}
	if msg, err := conn.Recv(); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*wire.Ack); !ok {
		t.Fatalf("handshake reply %T, want ack", msg)
	}
	return conn
}

func sendBatch(t *testing.T, conn *wire.Conn, id string, seq uint64) {
	t.Helper()
	batch := &wire.SampleBatch{AgentID: id, Seq: seq, Readings: []wire.Reading{
		{TimestampMillis: int64(seq * 10), Sensor: "s", Values: []float64{float64(seq)}},
	}}
	if err := conn.Send(batch); err != nil {
		t.Fatal(err)
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch m := msg.(type) {
		case *wire.Ack:
			return
		case *wire.ClockSync:
			if err := conn.Send(&wire.ClockAck{AgentID: id, AgentMillis: m.MasterMillis}); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unexpected %T while awaiting batch ack", msg)
		}
	}
}

func TestControllerDedupesReplaysAcrossResume(t *testing.T) {
	db := tsdb.New()
	ctrl := NewController(db, wallMillis)
	dedupedBefore := mDeduped.Value()
	resumedBefore := mResumed.Value()

	conn1 := dialAndHello(t, ctrl, "dd")
	sendBatch(t, conn1, "dd", 1)
	sendBatch(t, conn1, "dd", 1) // replay on the same connection: ack, no store
	sendBatch(t, conn1, "dd", 2)
	conn1.Close()

	// Reconnect: the replayed batch 2 must still be recognized — dedupe state
	// belongs to the agent session, not the connection.
	conn2 := dialAndHello(t, ctrl, "dd")
	sendBatch(t, conn2, "dd", 2)
	sendBatch(t, conn2, "dd", 3)
	conn2.Close()

	if got := db.Len("dd/s[0]"); got != 3 {
		t.Fatalf("%d rows stored, want 3 (seqs 1,2,3 exactly once)", got)
	}
	st, ok := ctrl.AgentStats("dd")
	if !ok {
		t.Fatal("agent unknown")
	}
	if st.Deduped != 2 {
		t.Fatalf("deduped = %d, want 2", st.Deduped)
	}
	if st.LastSeq != 3 {
		t.Fatalf("lastSeq = %d, want 3", st.LastSeq)
	}
	if st.Sessions != 2 {
		t.Fatalf("sessions = %d, want 2", st.Sessions)
	}
	if got := mDeduped.Value() - dedupedBefore; got != 2 {
		t.Fatalf("darnet_collect_batches_deduped_total moved by %d, want 2", got)
	}
	if got := mResumed.Value() - resumedBefore; got != 1 {
		t.Fatalf("darnet_collect_sessions_resumed_total moved by %d, want 1", got)
	}
}

func TestLegacySeqZeroIsNeverDeduped(t *testing.T) {
	db := tsdb.New()
	ctrl := NewController(db, wallMillis)
	conn := dialAndHello(t, ctrl, "v1")
	defer conn.Close()
	sendBatch(t, conn, "v1", 0)
	sendBatch(t, conn, "v1", 0)
	if got := db.Len("v1/s[0]"); got != 2 {
		t.Fatalf("%d rows, want 2: protocol-v1 batches carry no seq and must never be deduped", got)
	}
}

func TestIdleConnectionIsReaped(t *testing.T) {
	db := tsdb.New()
	ctrl := NewController(db, wallMillis)
	ctrl.SetIdleTimeout(50 * time.Millisecond)
	before := mIdleReaps.Value()
	aRaw, cRaw := net.Pipe()
	defer aRaw.Close()
	serveDone := make(chan error, 1)
	go func() { serveDone <- ctrl.ServeConn(wire.NewConn(cRaw)) }()
	// Say nothing at all: the handshake read must hit the deadline.
	select {
	case err := <-serveDone:
		if !errors.Is(err, ErrIdleReaped) {
			t.Fatalf("reap error = %v, want ErrIdleReaped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("silent connection was never reaped")
	}
	if got := mIdleReaps.Value() - before; got != 1 {
		t.Fatalf("darnet_collect_idle_reaps_total moved by %d, want 1", got)
	}
}

func TestHeartbeatKeepsIdleSessionAlive(t *testing.T) {
	db := tsdb.New()
	ctrl := NewController(db, wallMillis)
	ctrl.SetIdleTimeout(80 * time.Millisecond)
	hbBefore := mHeartbeatsRx.Value()
	conn := dialAndHello(t, ctrl, "hb")
	defer conn.Close()
	// Stay silent except for heartbeats well inside the deadline; the session
	// must survive several deadline windows.
	for i := 0; i < 6; i++ {
		time.Sleep(30 * time.Millisecond)
		if err := conn.Send(&wire.Heartbeat{AgentID: "hb"}); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
		if msg, err := conn.Recv(); err != nil {
			t.Fatalf("heartbeat ack %d: %v", i, err)
		} else if _, ok := msg.(*wire.Ack); !ok {
			t.Fatalf("heartbeat reply %T, want ack", msg)
		}
	}
	// The session is still live: a batch goes through.
	sendBatch(t, conn, "hb", 1)
	if got := db.Len("hb/s[0]"); got != 1 {
		t.Fatalf("%d rows after heartbeats, want 1", got)
	}
	if got := mHeartbeatsRx.Value() - hbBefore; got != 6 {
		t.Fatalf("darnet_collect_heartbeats_total moved by %d, want 6", got)
	}
}

func TestAgentAckTimeoutSurfacesDeadController(t *testing.T) {
	aRaw, cRaw := net.Pipe()
	defer cRaw.Close()
	defer aRaw.Close()
	clock := NewDriftClock(wallMillis, 0)
	agent, err := NewAgent(AgentConfig{ID: "to", AckTimeout: 50 * time.Millisecond}, clock, faultSensors(), wire.NewConn(aRaw))
	if err != nil {
		t.Fatal(err)
	}
	// Nobody ever reads cRaw or acks: Hello must fail by deadline, not hang.
	done := make(chan error, 1)
	go func() { done <- agent.Hello() }()
	go func() { // drain the controller side so Send itself succeeds
		buf := make([]byte, 1024)
		for {
			if _, err := cRaw.Read(buf); err != nil {
				return
			}
		}
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("hello succeeded with a mute controller")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hello hung despite AckTimeout")
	}
}

func TestStaleAckIsSkippedByFlush(t *testing.T) {
	aRaw, cRaw := net.Pipe()
	defer aRaw.Close()
	defer cRaw.Close()
	clock := NewDriftClock(wallMillis, 0)
	agent, err := NewAgent(AgentConfig{ID: "sa"}, clock, faultSensors(), wire.NewConn(aRaw))
	if err != nil {
		t.Fatal(err)
	}
	// Hand-rolled controller side: ack the hello, then answer the batch with
	// a stale ack (seq 0, as a duplicated earlier frame would provoke) before
	// the real one. Flush must wait for the matching ack.
	ctrlDone := make(chan error, 1)
	go func() {
		c := wire.NewConn(cRaw)
		if _, err := c.Recv(); err != nil { // hello
			ctrlDone <- err
			return
		}
		if err := c.Send(&wire.Ack{}); err != nil {
			ctrlDone <- err
			return
		}
		if _, err := c.Recv(); err != nil { // batch seq 1
			ctrlDone <- err
			return
		}
		if err := c.Send(&wire.Ack{Seq: 0}); err != nil { // stale
			ctrlDone <- err
			return
		}
		ctrlDone <- c.Send(&wire.Ack{Seq: 1, Count: 1}) // the real ack
	}()
	if err := agent.Hello(); err != nil {
		t.Fatal(err)
	}
	agent.Poll()
	if err := agent.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := <-ctrlDone; err != nil {
		t.Fatal(err)
	}
	if agent.NextSeq() != 2 {
		t.Fatalf("next seq = %d, want 2 (batch 1 settled)", agent.NextSeq())
	}
	if agent.Buffered() != 0 {
		t.Fatalf("buffered = %d after settled flush, want 0", agent.Buffered())
	}
}

func TestRetransmitKeepsFrozenBatch(t *testing.T) {
	db := tsdb.New()
	ctrl := NewController(db, wallMillis)
	dial := serveController(t, ctrl)
	clock := NewDriftClock(wallMillis, 0)
	agent, err := NewAgent(AgentConfig{ID: "fz", AckTimeout: 50 * time.Millisecond}, clock, faultSensors(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// First flush against a dead transport: the batch freezes as pending.
	deadA, deadC := net.Pipe()
	deadC.Close()
	deadA.Close()
	agent.conn = wire.NewConn(deadA)
	agent.Poll()
	agent.Poll()
	if err := agent.Flush(); err == nil {
		t.Fatal("flush over a dead pipe succeeded")
	}
	frozen := len(agent.pending)
	if frozen != 2 {
		t.Fatalf("pending = %d readings, want 2", frozen)
	}
	// More polls during the outage spill separately, not into the frozen batch.
	agent.Poll()
	if len(agent.pending) != frozen {
		t.Fatal("pending batch grew after freezing — retransmit would not be byte-identical")
	}
	if agent.Buffered() != 3 {
		t.Fatalf("buffered = %d, want 3", agent.Buffered())
	}
	// Reconnect and drain: pending goes out with seq 1, the spill with seq 2.
	conn, _ := dial()
	if err := agent.Reconnect(conn); err != nil {
		t.Fatal(err)
	}
	if err := agent.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := agent.Flush(); err != nil {
		t.Fatal(err)
	}
	if agent.Buffered() != 0 {
		t.Fatalf("buffered = %d after draining, want 0", agent.Buffered())
	}
	st, _ := ctrl.AgentStats("fz")
	if st.LastSeq != 2 {
		t.Fatalf("lastSeq = %d, want 2", st.LastSeq)
	}
	if got := db.Len(fmt.Sprintf("fz/s[%d]", 0)); got != 3 {
		t.Fatalf("%d rows stored, want 3", got)
	}
}

package collect

import (
	"fmt"

	"darnet/internal/imu"
)

// The paper collects labelled data by scripting sessions: "Each driver was
// instructed (by the passenger, in real time) to perform a scripted set of
// 'distractions' for a duration of 15 seconds and the entire script was
// repeated 10 times for each driver" (§5.1), with each video verified and
// labelled afterwards. SessionScript models that protocol and labels the
// collected windows from it, turning a streamed session into a training set.

// ScriptSegment is one scripted activity: a class label held for a duration.
type ScriptSegment struct {
	Label          int
	DurationMillis int64
}

// SessionScript is an ordered sequence of scripted segments.
type SessionScript struct {
	Segments []ScriptSegment
}

// NewSessionScript builds a script from (label, duration) segments,
// validating durations.
func NewSessionScript(segments ...ScriptSegment) (*SessionScript, error) {
	if len(segments) == 0 {
		return nil, fmt.Errorf("collect: script needs at least one segment")
	}
	for i, seg := range segments {
		if seg.DurationMillis <= 0 {
			return nil, fmt.Errorf("collect: segment %d has non-positive duration %d", i, seg.DurationMillis)
		}
		if seg.Label < 0 {
			return nil, fmt.Errorf("collect: segment %d has negative label %d", i, seg.Label)
		}
	}
	return &SessionScript{Segments: append([]ScriptSegment(nil), segments...)}, nil
}

// Repeat returns the script repeated n times (the paper repeats its script
// 10 times per driver).
func (s *SessionScript) Repeat(n int) (*SessionScript, error) {
	if n < 1 {
		return nil, fmt.Errorf("collect: repeat count %d must be >= 1", n)
	}
	out := &SessionScript{Segments: make([]ScriptSegment, 0, n*len(s.Segments))}
	for i := 0; i < n; i++ {
		out.Segments = append(out.Segments, s.Segments...)
	}
	return out, nil
}

// TotalMillis returns the script's total duration.
func (s *SessionScript) TotalMillis() int64 {
	total := int64(0)
	for _, seg := range s.Segments {
		total += seg.DurationMillis
	}
	return total
}

// LabelAt returns the scripted label at the given offset from session start,
// or ok=false outside the script.
func (s *SessionScript) LabelAt(offsetMillis int64) (label int, ok bool) {
	if offsetMillis < 0 {
		return 0, false
	}
	acc := int64(0)
	for _, seg := range s.Segments {
		acc += seg.DurationMillis
		if offsetMillis < acc {
			return seg.Label, true
		}
	}
	return 0, false
}

// LabelWindows assigns each collected window the scripted label with the
// greatest time overlap — the offline verification/labelling step of §5.1.
// Windows entirely outside the script are an error; windows straddling a
// segment boundary take the majority segment.
func (s *SessionScript) LabelWindows(startMillis int64, windows []imu.Window) ([]int, error) {
	labels := make([]int, len(windows))
	for i, w := range windows {
		if len(w.Samples) == 0 {
			return nil, fmt.Errorf("collect: window %d is empty", i)
		}
		wStart := w.Samples[0].TimestampMillis - startMillis
		wEnd := w.Samples[len(w.Samples)-1].TimestampMillis - startMillis
		if wEnd < wStart {
			return nil, fmt.Errorf("collect: window %d has reversed timestamps", i)
		}
		label, ok := s.majorityLabel(wStart, wEnd+1)
		if !ok {
			return nil, fmt.Errorf("collect: window %d ([%d, %d] ms) lies outside the script", i, wStart, wEnd)
		}
		labels[i] = label
	}
	return labels, nil
}

// majorityLabel returns the label with the greatest overlap with [from, to).
func (s *SessionScript) majorityLabel(from, to int64) (int, bool) {
	overlap := map[int]int64{}
	segStart := int64(0)
	for _, seg := range s.Segments {
		segEnd := segStart + seg.DurationMillis
		lo := max(from, segStart)
		hi := min(to, segEnd)
		if hi > lo {
			overlap[seg.Label] += hi - lo
		}
		segStart = segEnd
	}
	best, bestDur := 0, int64(0)
	for label, dur := range overlap {
		if dur > bestDur || (dur == bestDur && bestDur > 0 && label < best) {
			best, bestDur = label, dur
		}
	}
	if bestDur == 0 {
		return 0, false
	}
	return best, true
}

package collect

import (
	"testing"
	"testing/quick"

	"darnet/internal/imu"
)

func mkWindow(startMillis int64, stepMillis int64, n int) imu.Window {
	samples := make([]imu.Sample, n)
	for i := range samples {
		samples[i].TimestampMillis = startMillis + int64(i)*stepMillis
	}
	return imu.Window{Samples: samples}
}

func TestNewSessionScriptValidation(t *testing.T) {
	if _, err := NewSessionScript(); err == nil {
		t.Fatal("expected empty-script error")
	}
	if _, err := NewSessionScript(ScriptSegment{Label: 0, DurationMillis: 0}); err == nil {
		t.Fatal("expected duration error")
	}
	if _, err := NewSessionScript(ScriptSegment{Label: -1, DurationMillis: 10}); err == nil {
		t.Fatal("expected label error")
	}
}

func TestScriptRepeatAndTotal(t *testing.T) {
	// The paper's protocol: 15-second distraction segments, script repeated
	// 10 times.
	s, err := NewSessionScript(
		ScriptSegment{Label: 0, DurationMillis: 15000},
		ScriptSegment{Label: 2, DurationMillis: 15000},
	)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Repeat(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Segments) != 20 {
		t.Fatalf("repeated script has %d segments", len(r.Segments))
	}
	if r.TotalMillis() != 300_000 {
		t.Fatalf("total = %d ms", r.TotalMillis())
	}
	if _, err := s.Repeat(0); err == nil {
		t.Fatal("expected repeat-count error")
	}
}

func TestLabelAt(t *testing.T) {
	s, _ := NewSessionScript(
		ScriptSegment{Label: 0, DurationMillis: 100},
		ScriptSegment{Label: 5, DurationMillis: 50},
	)
	tests := []struct {
		offset int64
		want   int
		ok     bool
	}{
		{0, 0, true},
		{99, 0, true},
		{100, 5, true},
		{149, 5, true},
		{150, 0, false},
		{-1, 0, false},
	}
	for _, tt := range tests {
		got, ok := s.LabelAt(tt.offset)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Fatalf("LabelAt(%d) = %d,%v; want %d,%v", tt.offset, got, ok, tt.want, tt.ok)
		}
	}
}

func TestLabelWindowsMajority(t *testing.T) {
	s, _ := NewSessionScript(
		ScriptSegment{Label: 1, DurationMillis: 1000},
		ScriptSegment{Label: 2, DurationMillis: 1000},
	)
	start := int64(50_000)
	windows := []imu.Window{
		mkWindow(start, 100, 5),      // [0, 400] entirely in segment 1
		mkWindow(start+1200, 100, 5), // [1200, 1600] entirely in segment 2
		mkWindow(start+800, 100, 5),  // [800, 1200]: 200ms in seg1, 201ms in seg2 -> 2
		mkWindow(start+550, 100, 5),  // [550, 950]: all in seg1
	}
	labels, err := s.LabelWindows(start, windows)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 2, 1}
	for i, w := range want {
		if labels[i] != w {
			t.Fatalf("window %d labelled %d, want %d (labels=%v)", i, labels[i], w, labels)
		}
	}
}

func TestLabelWindowsErrors(t *testing.T) {
	s, _ := NewSessionScript(ScriptSegment{Label: 1, DurationMillis: 100})
	if _, err := s.LabelWindows(0, []imu.Window{{}}); err == nil {
		t.Fatal("expected empty-window error")
	}
	if _, err := s.LabelWindows(0, []imu.Window{mkWindow(500, 10, 3)}); err == nil {
		t.Fatal("expected outside-script error")
	}
}

// Property: for any script, LabelWindows of a window fully inside one
// segment returns that segment's label.
func TestLabelWindowsInsideSegmentProperty(t *testing.T) {
	f := func(seedSmall uint8) bool {
		n := 1 + int(seedSmall%5)
		segs := make([]ScriptSegment, n)
		for i := range segs {
			segs[i] = ScriptSegment{Label: i, DurationMillis: int64(100 + 50*i)}
		}
		s, err := NewSessionScript(segs...)
		if err != nil {
			return false
		}
		offset := int64(0)
		for i, seg := range segs {
			// A window occupying the middle of the segment.
			w := mkWindow(offset+10, 1, int(seg.DurationMillis-20))
			labels, err := s.LabelWindows(0, []imu.Window{w})
			if err != nil || labels[0] != i {
				return false
			}
			offset += seg.DurationMillis
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

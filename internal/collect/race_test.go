package collect

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

// TestConcurrentCollectionStress hammers the controller from many agent
// connections while reader goroutines sweep every query surface
// (stats, frames, series, alignment, pruning) and manual time advances
// continuously. It exists to give `go test -race ./internal/collect` real
// contention to bite on: the sequential protocol tests never overlap
// ServeConn with FrameNear or Prune, so they cannot catch a lock dropped
// from the controller, frame store, or tsdb paths.
func TestConcurrentCollectionStress(t *testing.T) {
	const (
		numAgents = 6
		rounds    = 40
	)
	mt := NewManualTime(1_000_000)
	db := tsdb.New()
	ctrl := NewController(db, mt.Now)
	ctrl.SetSyncPeriod(20) // force frequent clock-sync exchanges mid-stream

	stopAdvance := make(chan struct{})
	var advWG sync.WaitGroup
	advWG.Add(1)
	go func() {
		defer advWG.Done()
		for {
			select {
			case <-stopAdvance:
				return
			default:
				mt.Advance(1)
			}
		}
	}()

	serveErrs := make(chan error, numAgents)
	var agentsWG sync.WaitGroup
	for i := 0; i < numAgents; i++ {
		aRaw, cRaw := net.Pipe()
		go func(raw net.Conn) {
			serveErrs <- ctrl.ServeConn(wire.NewConn(raw))
		}(cRaw)
		agentsWG.Add(1)
		go func(i int, raw net.Conn) {
			defer agentsWG.Done()
			defer raw.Close()
			clk := NewDriftClock(mt.Now, 0.0005*float64(i))
			var sensors []Sensor
			modality := "imu"
			if i%2 == 0 {
				sensors = []Sensor{SensorFunc{
					SensorName: "accel",
					ReadFunc:   func() []float64 { return []float64{1, -2, 9.8} },
				}}
			} else {
				modality = "camera"
				pix := []float64{0.1, 0.2, 0.3, 0.4}
				sensors = []Sensor{FrameSensor(func() []float64 { return pix })}
			}
			agent, err := NewAgent(AgentConfig{
				ID: fmt.Sprintf("agent-%d", i), Modality: modality, PollPeriodMS: 5,
			}, clk, sensors, wire.NewConn(raw))
			if err != nil {
				t.Error(err)
				return
			}
			if err := agent.Hello(); err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < rounds; r++ {
				agent.Poll()
				if err := agent.Flush(); err != nil {
					t.Errorf("agent %d flush: %v", i, err)
					return
				}
			}
		}(i, aRaw)
	}

	// Readers overlap every controller/store query with the live writes.
	readerStop := make(chan struct{})
	var readersWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for {
				select {
				case <-readerStop:
					return
				default:
				}
				for _, id := range ctrl.AgentIDs() {
					ctrl.AgentStats(id)
					ctrl.FrameCount(id)
					ctrl.Frames(id)
					_, _ = ctrl.FrameNear(id, mt.Now(), 0)
				}
				for _, s := range db.Series() {
					db.Len(s)
					db.Bounds(s)
					db.Range(s, 0, mt.Now())
					_, _ = ctrl.Align([]string{s}, AlignConfig{
						FromMillis: mt.Now() - 500, ToMillis: mt.Now(), StepMillis: 50, SmoothWindow: 3,
					})
				}
			}
		}()
	}
	readersWG.Add(1)
	go func() {
		defer readersWG.Done()
		for {
			select {
			case <-readerStop:
				return
			default:
				db.Prune(mt.Now() - 5_000)
			}
		}
	}()

	agentsWG.Wait()
	close(readerStop)
	readersWG.Wait()
	close(stopAdvance)
	advWG.Wait()
	for i := 0; i < numAgents; i++ {
		if err := <-serveErrs; err != nil {
			t.Errorf("controller: %v", err)
		}
	}
	total := 0
	for _, id := range ctrl.AgentIDs() {
		st, ok := ctrl.AgentStats(id)
		if !ok {
			t.Fatalf("agent %s lost its stats", id)
		}
		total += st.Readings
	}
	if want := numAgents * rounds; total != want {
		t.Fatalf("controller recorded %d readings, want %d", total, want)
	}
}

// TestDriftClockConcurrency re-anchors a shared drift clock from one
// goroutine while others read it — the agent-side shape of a ClockSync
// arriving concurrently with sensor timestamping.
func TestDriftClockConcurrency(t *testing.T) {
	mt := NewManualTime(5_000)
	clk := NewDriftClock(mt.Now, 0.002)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					clk.NowMillis()
					clk.SkewMillis()
					mt.Advance(1)
				}
			}
		}()
	}
	for i := 0; i < 2_000; i++ {
		clk.SetMillis(mt.Now() + int64(i%7))
	}
	close(stop)
	wg.Wait()
}

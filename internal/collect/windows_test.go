package collect

import (
	"math"
	"testing"

	"darnet/internal/imu"
	"darnet/internal/tsdb"
)

func TestIMUSeriesNames(t *testing.T) {
	names := IMUSeriesNames("phone")
	if len(names) != imu.FeatureDim {
		t.Fatalf("got %d series names, want %d", len(names), imu.FeatureDim)
	}
	if names[0] != "phone/accel[0]" || names[12] != "phone/rotation[3]" {
		t.Fatalf("names = %v", names)
	}
}

func TestIMUSensorsExposeAllChannels(t *testing.T) {
	sample := imu.Sample{
		Accel:    [3]float64{1, 2, 3},
		Gyro:     [3]float64{4, 5, 6},
		Gravity:  [3]float64{7, 8, 9},
		Rotation: [4]float64{10, 11, 12, 13},
	}
	sensors := IMUSensors(func() imu.Sample { return sample })
	if len(sensors) != 4 {
		t.Fatalf("got %d sensors", len(sensors))
	}
	var flat []float64
	for _, s := range sensors {
		flat = append(flat, s.Read()...)
	}
	want := sample.Features()
	if len(flat) != len(want) {
		t.Fatalf("flat length %d", len(flat))
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("channel %d = %g, want %g", i, flat[i], want[i])
		}
	}
}

func TestAssembleIMUWindowsRoundTrip(t *testing.T) {
	// Store two windows' worth of samples directly and reassemble them.
	mt := NewManualTime(0)
	db := tsdb.New()
	ctrl := NewController(db, mt.Now)
	step := int64(1000 / imu.SampleRateHz)
	names := IMUSeriesNames("phone")
	total := 2 * imu.WindowSize
	for i := 0; i < total; i++ {
		ts := int64(i) * step
		for j, name := range names {
			db.Insert(name, tsdb.Point{TimestampMillis: ts, Value: float64(i) + float64(j)/100})
		}
	}
	windows, err := ctrl.AssembleIMUWindows("phone", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Fatalf("assembled %d windows, want 2", len(windows))
	}
	// Sample t of window w should carry value (w*WindowSize + t) + channel/100.
	for w, win := range windows {
		if len(win.Samples) != imu.WindowSize {
			t.Fatalf("window %d has %d samples", w, len(win.Samples))
		}
		for tt, s := range win.Samples {
			base := float64(w*imu.WindowSize + tt)
			if math.Abs(s.Accel[0]-base) > 1e-9 {
				t.Fatalf("window %d sample %d accel[0] = %g, want %g", w, tt, s.Accel[0], base)
			}
			if math.Abs(s.Rotation[3]-(base+0.12)) > 1e-9 {
				t.Fatalf("window %d sample %d rotation[3] = %g", w, tt, s.Rotation[3])
			}
			if s.TimestampMillis != int64(w*imu.WindowSize+tt)*step {
				t.Fatalf("window %d sample %d timestamp = %d", w, tt, s.TimestampMillis)
			}
		}
	}
}

func TestAssembleIMUWindowsNoData(t *testing.T) {
	mt := NewManualTime(0)
	ctrl := NewController(tsdb.New(), mt.Now)
	if _, err := ctrl.AssembleIMUWindows("ghost", 1); err == nil {
		t.Fatal("expected no-data error")
	}
}

package synth

import (
	"math"
	"math/rand"

	"darnet/internal/vision"
)

// DriverProfile captures per-driver appearance variation: the paper collects
// from 5 drivers (6-class set) and 10 drivers (18-class set).
type DriverProfile struct {
	SeatOffset float64 // horizontal seat position shift, normalized
	BodyScale  float64 // torso/head size multiplier
	SkinShade  float64 // head/hand intensity
	ShirtShade float64 // torso intensity
}

// NewDriverProfile samples a driver identity.
func NewDriverProfile(rng *rand.Rand) DriverProfile {
	return DriverProfile{
		SeatOffset: (rng.Float64() - 0.5) * 0.08,
		BodyScale:  0.9 + rng.Float64()*0.2,
		SkinShade:  0.55 + rng.Float64()*0.25,
		ShirtShade: 0.25 + rng.Float64()*0.2,
	}
}

// AmbiguityConfig tunes how confusable the image channel is between the
// phone classes — the knob that reproduces the paper's single-modality
// failure mode (texting at 36% under the CNN alone).
type AmbiguityConfig struct {
	// PhoneVisibleProb is the chance the phone prop is actually drawn for a
	// texting frame; otherwise only the (ambiguous) hand pose shows. While
	// texting the phone is held out in the palm, so it shows more often.
	PhoneVisibleProb float64
	// TalkPhoneVisibleProb is the phone visibility for talking frames, where
	// the hand wraps the device against the ear and usually hides it.
	TalkPhoneVisibleProb float64
	// PropContrast scales prop intensity away from the background.
	PropContrast float64
	// PoseJitter is the normalized positional noise applied to hands/head.
	PoseJitter float64
	// NoiseSigma is per-pixel Gaussian sensor noise.
	NoiseSigma float64
	// RestingHandProb is the chance a normal-driving frame shows a hand
	// resting near the face (mimicking the talking silhouette).
	RestingHandProb float64
}

// DefaultAmbiguity is tuned so the frame-only CNN lands in the paper's
// mid-70s Top-1 band with heavy texting/talking/normal confusion.
func DefaultAmbiguity() AmbiguityConfig {
	return AmbiguityConfig{
		PhoneVisibleProb:     0.60,
		TalkPhoneVisibleProb: 0.35,
		PropContrast:         0.9,
		PoseJitter:           0.05,
		NoiseSigma:           0.13,
		RestingHandProb:      0.25,
	}
}

// scenePose describes the class-conditioned geometry of one frame in
// normalized [0,1] coordinates.
type scenePose struct {
	rightHandX, rightHandY float64
	headTilt               float64 // horizontal head offset
	prop                   propKind
	propX, propY           float64
	propVisible            bool
	extraHandToFace        bool // normal-driving resting hand
}

type propKind int

const (
	propNone propKind = iota
	propPhone
	propCup
	propBrush
)

// poseFor samples the pose for a full driving class.
func poseFor(rng *rand.Rand, c Class, amb AmbiguityConfig) scenePose {
	j := func() float64 { return (rng.Float64() - 0.5) * 2 * amb.PoseJitter }
	var p scenePose
	switch c {
	case NormalDriving:
		p.rightHandX, p.rightHandY = 0.62+j(), 0.64+j()
		p.headTilt = j() * 0.5
		p.extraHandToFace = rng.Float64() < amb.RestingHandProb
		// Some normal frames show the driver glancing down (mirrors,
		// speedometer), mimicking the texting head pose.
		if rng.Float64() < 0.3 {
			p.headTilt += 0.03
		}
	case Talking:
		p.rightHandX, p.rightHandY = 0.56+j(), 0.36+j()
		// Half the talking frames show the head leaning into the phone — a
		// cue texting lacks.
		p.headTilt = 0.02 + j()
		if rng.Float64() < 0.4 {
			p.headTilt += 0.10
		}
		p.prop = propPhone
		p.propX, p.propY = p.rightHandX+0.015, p.rightHandY
		// The phone peeking out at the ear is talking's identifying cue; it
		// anchors the raised-hand cluster to the talking class.
		p.propVisible = rng.Float64() < amb.TalkPhoneVisibleProb
	case Texting:
		// Paper §5.1: the texting orientation holds the phone "between waist
		// and eye level", a raised-hand silhouette that coincides with the
		// talking pose (and the normal resting-hand pose) at dashcam
		// resolution. With the phone frequently invisible, the three phone
		// classes collapse into one visual cluster — the source of the
		// paper's 36% texting recall under the frame-only CNN.
		// The hand wraps the device, so the phone itself is never visible at
		// dashcam resolution — texting is only identifiable when the hand
		// hovers at its characteristic mid height.
		switch r := rng.Float64(); {
		case r < 0.5:
			// Phone held high (eye level): coincides with the talking pose.
			p.rightHandX = 0.56 + j()
			p.rightHandY = 0.36 + j()
		case r < 0.78:
			// Phone held at mid height: texting's own silhouette.
			p.rightHandX = 0.58 + j()
			p.rightHandY = 0.50 + j()
		default:
			// Phone held low (waist level): coincides with the normal wheel
			// grip.
			p.rightHandX = 0.61 + j()
			p.rightHandY = 0.66 + j()
		}
		p.headTilt = 0.02 + j()
		p.prop = propPhone
		p.propX, p.propY = p.rightHandX+0.015, p.rightHandY
		p.propVisible = false
	case EatingDrinking:
		// Distinctive: bright cup held to the mouth, head tipped back.
		p.rightHandX, p.rightHandY = 0.44+j(), 0.45+j()
		p.headTilt = -0.03 + j()
		p.prop = propCup
		p.propX, p.propY = 0.45+j(), 0.41+j()
		p.propVisible = true
	case HairMakeup:
		// Distinctive: arm raised over the head.
		p.rightHandX, p.rightHandY = 0.36+j(), 0.13+j()
		p.headTilt = -0.02 + j()
		p.prop = propBrush
		p.propX, p.propY = p.rightHandX, p.rightHandY
		p.propVisible = true
	case Reaching:
		p.rightHandX, p.rightHandY = 0.88+j(), 0.48+j()
		p.headTilt = 0.06 + j()
	}
	return p
}

// RenderScene rasterizes one driver frame of size w×h for the given class,
// driver, and ambiguity configuration.
func RenderScene(rng *rand.Rand, w, h int, c Class, d DriverProfile, amb AmbiguityConfig) *vision.Image {
	pose := poseFor(rng, c, amb)
	img := vision.MustNewImage(w, h)
	renderPose(rng, img, pose, d, amb)
	return img
}

// renderPose draws a scene from an explicit pose; shared with the 18-class
// generator which constructs poses directly.
func renderPose(rng *rand.Rand, img *vision.Image, pose scenePose, d DriverProfile, amb AmbiguityConfig) {
	w, h := img.W, img.H
	fw, fh := float64(w), float64(h)
	px := func(x float64) float64 { return x * fw }
	py := func(y float64) float64 { return y * fh }

	// Cabin background: window band on top, darker dash below.
	img.Fill(0.12)
	img.FillRect(0, 0, w, int(0.28*fh), 0.45)
	img.FillRect(0, int(0.82*fh), w, h, 0.08)

	seat := d.SeatOffset
	scale := d.BodyScale

	// Torso.
	img.FillEllipse(px(0.45+seat), py(0.72), px(0.20*scale), py(0.26*scale), d.ShirtShade)
	// Head.
	headX, headY := 0.45+seat+pose.headTilt, 0.33
	headR := 0.085 * scale
	img.FillEllipse(px(headX), py(headY), px(headR), py(headR*1.15), d.SkinShade)

	// Steering wheel (drawn after torso so it can occlude lap-level props).
	wheelY := 0.70
	img.DrawLine(px(0.22), py(wheelY), px(0.58), py(wheelY), fh*0.035, 0.30)
	img.DrawLine(px(0.22), py(wheelY), px(0.26), py(wheelY+0.10), fh*0.03, 0.30)
	img.DrawLine(px(0.58), py(wheelY), px(0.54), py(wheelY+0.10), fh*0.03, 0.30)

	// Left arm: shoulder to wheel.
	shoulderX, shoulderY := 0.38+seat, 0.52
	img.DrawLine(px(shoulderX), py(shoulderY), px(0.28), py(wheelY), fh*0.04, d.ShirtShade*1.1)
	img.FillEllipse(px(0.28), py(wheelY), px(0.025*scale), py(0.025*scale), d.SkinShade)

	// Right arm: shoulder to class-dependent hand position.
	rShoulderX, rShoulderY := 0.52+seat, 0.52
	img.DrawLine(px(rShoulderX), py(rShoulderY), px(pose.rightHandX), py(pose.rightHandY), fh*0.04, d.ShirtShade*1.1)
	img.FillEllipse(px(pose.rightHandX), py(pose.rightHandY), px(0.028*scale), py(0.028*scale), d.SkinShade)

	// Optional resting hand near the face (normal-driving ambiguity): the
	// elbow-on-door, hand-by-cheek posture that mimics the talking silhouette.
	if pose.extraHandToFace {
		img.DrawLine(px(rShoulderX), py(rShoulderY), px(headX+0.11), py(headY+0.06), fh*0.035, d.ShirtShade*1.1)
		img.FillEllipse(px(headX+0.11), py(headY+0.06), px(0.025*scale), py(0.025*scale), d.SkinShade)
	}

	// Prop.
	if pose.propVisible {
		contrast := amb.PropContrast
		switch pose.prop {
		case propPhone:
			shade := d.SkinShade + (0.95-d.SkinShade)*contrast
			pxc, pyc := px(pose.propX), py(pose.propY)
			img.FillRect(int(pxc-0.026*fw), int(pyc-0.042*fh), int(pxc+0.026*fw), int(pyc+0.042*fh), shade)
		case propCup:
			// Cups and brushes are large, high-contrast props regardless of
			// the ambiguity setting — the paper's CNN separates these classes
			// well; only the phone classes are visually ambiguous.
			img.FillEllipse(px(pose.propX), py(pose.propY), px(0.032), py(0.06), 0.97)
		case propBrush:
			img.DrawLine(px(pose.propX-0.03), py(pose.propY+0.04), px(pose.propX+0.03), py(pose.propY-0.04), fh*0.02, 0.92)
		}
	}

	// Lighting variation and sensor noise.
	img.ScaleBrightness(0.7 + rng.Float64()*0.6)
	if amb.NoiseSigma > 0 {
		img.AddNoise(func(int) float64 { return rng.NormFloat64() * amb.NoiseSigma })
	}
}

// Render18Class rasterizes a frame for the 18-class alternative dataset used
// by the dCNN privacy evaluation (paper §5.3): 18 distraction poses laid out
// as hand positions around the cabin with varying props.
func Render18Class(rng *rand.Rand, w, h int, class18 int, d DriverProfile, amb AmbiguityConfig) *vision.Image {
	j := func() float64 { return (rng.Float64() - 0.5) * 2 * amb.PoseJitter }
	// 18 poses: hand position on an arc around the driver plus one of three
	// prop states (none / phone / cup) cycling with the class index.
	angle := 2 * math.Pi * float64(class18) / 18
	p := scenePose{
		rightHandX: 0.55 + 0.28*math.Cos(angle) + j(),
		rightHandY: 0.45 + 0.25*math.Sin(angle) + j(),
		headTilt:   0.04*math.Cos(angle) + j(),
	}
	switch class18 % 3 {
	case 0:
		p.prop = propNone
	case 1:
		p.prop = propPhone
		p.propVisible = rng.Float64() < 0.7
		p.propX, p.propY = p.rightHandX+0.01, p.rightHandY
	case 2:
		p.prop = propCup
		p.propVisible = true
		p.propX, p.propY = p.rightHandX, p.rightHandY-0.03
	}
	img := vision.MustNewImage(w, h)
	renderPose(rng, img, p, d, amb)
	return img
}

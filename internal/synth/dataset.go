package synth

import (
	"fmt"
	"math/rand"

	"darnet/internal/imu"
	"darnet/internal/tensor"
	"darnet/internal/vision"
)

// Sample is one multi-modal observation: a frame and its aligned IMU window.
type Sample struct {
	Class  Class
	Driver int
	Frame  *vision.Image
	Window imu.Window
}

// Dataset is a labelled multi-modal collection.
type Dataset struct {
	Samples []*Sample
	ImgW    int
	ImgH    int
	Classes int
}

// Config controls generation of the 6-class Table 1 dataset.
type Config struct {
	ImgW, ImgH int     // frame resolution (paper frames are 300×300; training uses smaller)
	Drivers    int     // paper: 5
	Scale      float64 // multiplies Table 1 per-class counts (1.0 = full 57,080 frames)
	Seed       int64
	Ambiguity  AmbiguityConfig
	IMU        IMUGenConfig
}

// DefaultConfig returns a tractable default: 32×32 frames at 4% of the
// paper's frame counts, 5 drivers.
func DefaultConfig() Config {
	return Config{
		ImgW: 32, ImgH: 32,
		Drivers:   5,
		Scale:     0.04,
		Seed:      1,
		Ambiguity: DefaultAmbiguity(),
		IMU:       DefaultIMUGen(),
	}
}

// GenerateTable1 produces the 6-class dataset with per-class counts following
// Table 1 (scaled by cfg.Scale, minimum 2 per class).
func GenerateTable1(cfg Config) (*Dataset, error) {
	if cfg.ImgW <= 0 || cfg.ImgH <= 0 {
		return nil, fmt.Errorf("synth: non-positive frame dims %dx%d", cfg.ImgW, cfg.ImgH)
	}
	if cfg.Drivers <= 0 {
		return nil, fmt.Errorf("synth: need at least one driver")
	}
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("synth: scale must be positive, got %g", cfg.Scale)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	drivers := make([]DriverProfile, cfg.Drivers)
	for i := range drivers {
		drivers[i] = NewDriverProfile(rng)
	}
	ds := &Dataset{ImgW: cfg.ImgW, ImgH: cfg.ImgH, Classes: NumClasses}
	for c := 0; c < NumClasses; c++ {
		n := int(float64(Table1Counts[c])*cfg.Scale + 0.5)
		if n < 2 {
			n = 2
		}
		for i := 0; i < n; i++ {
			driver := rng.Intn(cfg.Drivers)
			ds.Samples = append(ds.Samples, &Sample{
				Class:  Class(c),
				Driver: driver,
				Frame:  RenderScene(rng, cfg.ImgW, cfg.ImgH, Class(c), drivers[driver], cfg.Ambiguity),
				Window: GenerateWindow(rng, Class(c), cfg.IMU),
			})
		}
	}
	return ds, nil
}

// Config18 controls generation of the 18-class alternative dataset used by
// the dCNN privacy evaluation.
type Config18 struct {
	ImgW, ImgH int
	Drivers    int // paper: 10
	PerClass   int // frames per class
	Seed       int64
	Ambiguity  AmbiguityConfig
}

// DefaultConfig18 returns a tractable default for the 18-class set.
func DefaultConfig18() Config18 {
	amb := DefaultAmbiguity()
	amb.NoiseSigma = 0.10
	amb.PoseJitter = 0.045
	return Config18{
		ImgW: 32, ImgH: 32,
		Drivers:   10,
		PerClass:  110,
		Seed:      2,
		Ambiguity: amb,
	}
}

// Generate18Class produces the 18-class frame dataset (no IMU stream: the
// paper's second dataset is video-only, recorded with a GoPro).
func Generate18Class(cfg Config18) (*Dataset, error) {
	if cfg.ImgW <= 0 || cfg.ImgH <= 0 {
		return nil, fmt.Errorf("synth: non-positive frame dims %dx%d", cfg.ImgW, cfg.ImgH)
	}
	if cfg.Drivers <= 0 || cfg.PerClass <= 0 {
		return nil, fmt.Errorf("synth: drivers and per-class count must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	drivers := make([]DriverProfile, cfg.Drivers)
	for i := range drivers {
		drivers[i] = NewDriverProfile(rng)
	}
	ds := &Dataset{ImgW: cfg.ImgW, ImgH: cfg.ImgH, Classes: 18}
	for c := 0; c < 18; c++ {
		for i := 0; i < cfg.PerClass; i++ {
			driver := rng.Intn(cfg.Drivers)
			ds.Samples = append(ds.Samples, &Sample{
				Class:  Class(c),
				Driver: driver,
				Frame:  Render18Class(rng, cfg.ImgW, cfg.ImgH, c, drivers[driver], cfg.Ambiguity),
			})
		}
	}
	return ds, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Split partitions the dataset into train/test with the given test fraction,
// shuffling with rng — the paper's 80/20 partition uses frac = 0.2.
func (d *Dataset) Split(rng *rand.Rand, testFrac float64) (train, test *Dataset, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("synth: test fraction %g outside (0,1)", testFrac)
	}
	idx := rng.Perm(len(d.Samples))
	nTest := int(float64(len(d.Samples)) * testFrac)
	if nTest == 0 {
		nTest = 1
	}
	test = &Dataset{ImgW: d.ImgW, ImgH: d.ImgH, Classes: d.Classes}
	train = &Dataset{ImgW: d.ImgW, ImgH: d.ImgH, Classes: d.Classes}
	for i, j := range idx {
		if i < nTest {
			test.Samples = append(test.Samples, d.Samples[j])
		} else {
			train.Samples = append(train.Samples, d.Samples[j])
		}
	}
	return train, test, nil
}

// Frames returns the (N, W*H) design matrix of all frames.
func (d *Dataset) Frames() *tensor.Tensor {
	out := tensor.New(len(d.Samples), d.ImgW*d.ImgH)
	for i, s := range d.Samples {
		copy(out.Row(i), s.Frame.Pix)
	}
	return out
}

// Labels returns the full-class integer labels.
func (d *Dataset) Labels() []int {
	out := make([]int, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = int(s.Class)
	}
	return out
}

// IMULabels returns the labels projected onto the IMU class space.
func (d *Dataset) IMULabels() []int {
	out := make([]int, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = s.Class.IMUClass()
	}
	return out
}

// IMUWindows returns all IMU windows in sample order.
func (d *Dataset) IMUWindows() []imu.Window {
	out := make([]imu.Window, len(d.Samples))
	for i, s := range d.Samples {
		out[i] = s.Window
	}
	return out
}

// ClassCounts returns the number of samples per class.
func (d *Dataset) ClassCounts() []int {
	out := make([]int, d.Classes)
	for _, s := range d.Samples {
		out[int(s.Class)]++
	}
	return out
}

// KFold partitions the dataset into k folds and returns the k (train, test)
// pairs for cross-validated evaluation — a more robust protocol than the
// paper's single 80/20 split. The shuffle is drawn from rng; every sample
// appears in exactly one test fold.
func (d *Dataset) KFold(rng *rand.Rand, k int) ([][2]*Dataset, error) {
	if k < 2 || k > len(d.Samples) {
		return nil, fmt.Errorf("synth: k=%d outside [2, %d]", k, len(d.Samples))
	}
	idx := rng.Perm(len(d.Samples))
	out := make([][2]*Dataset, k)
	for fold := 0; fold < k; fold++ {
		train := &Dataset{ImgW: d.ImgW, ImgH: d.ImgH, Classes: d.Classes}
		test := &Dataset{ImgW: d.ImgW, ImgH: d.ImgH, Classes: d.Classes}
		for i, j := range idx {
			if i%k == fold {
				test.Samples = append(test.Samples, d.Samples[j])
			} else {
				train.Samples = append(train.Samples, d.Samples[j])
			}
		}
		out[fold] = [2]*Dataset{train, test}
	}
	return out, nil
}

package synth

import (
	"math"
	"math/rand"

	"darnet/internal/imu"
)

// deviceOrientation is the gravity direction and base quaternion for one of
// the paper's three client-device positions: pocket (all non-phone classes),
// held to the ear (talking), held between waist and eye level (texting).
type deviceOrientation struct {
	gravity  [3]float64
	rotation [4]float64
}

var imuOrientations = [NumIMUClasses]deviceOrientation{
	IMUNormal: {
		gravity:  [3]float64{0.4, 9.70, 0.9}, // horizontal in the front-right pocket
		rotation: [4]float64{0.02, 0.01, 0.03, 0.999},
	},
	IMUTalk: {
		gravity:  [3]float64{6.4, 6.9, 2.1}, // tilted against the ear
		rotation: [4]float64{0.36, 0.21, 0.09, 0.90},
	},
	IMUText: {
		gravity:  [3]float64{0.9, 3.1, 9.25}, // screen up at waist level
		rotation: [4]float64{0.11, 0.06, 0.58, 0.80},
	},
}

// IMUGenConfig tunes IMU trace realism.
type IMUGenConfig struct {
	// VibrationSigma is road/engine vibration on the accelerometer.
	VibrationSigma float64
	// GyroSigma is baseline rotational noise.
	GyroSigma float64
	// OrientationJitter perturbs the per-window device orientation.
	OrientationJitter float64
	// TransitionProb is the chance a talking/texting window begins with a
	// run of pocket-orientation steps (the driver picking the phone up) —
	// temporal structure that favours the LSTM over the flattened SVM.
	TransitionProb float64
	// ReachingBurstProb is the chance a Reaching window contains a
	// talking-like tilt burst (the paper observes reaching adds enough IMU
	// noise to produce ~5% talking misclassifications).
	ReachingBurstProb float64
	// RandomOrientationProb is the chance a window's device orientation is
	// randomized (phone in a holder, cup holder, loose grip). In such
	// windows orientation carries no class information and only the temporal
	// activity signature (sway periodicity, tap bursts) identifies the
	// class — structure a recurrent model exploits but a linear model on
	// flattened features largely cannot.
	RandomOrientationProb float64
}

// DefaultIMUGen returns the tuned default generator configuration. The
// values are calibrated so the IMU-only sequence models land in the paper's
// mid-90s band (RNN 97.44%, SVM 95.37%) rather than saturating: the
// orientation jitter makes gravity vectors overlap across classes, and the
// per-window activity scaling produces "quiet" windows whose class is only
// recoverable from temporal structure.
func DefaultIMUGen() IMUGenConfig {
	return IMUGenConfig{
		VibrationSigma:        0.6,
		GyroSigma:             0.08,
		OrientationJitter:     1.5,
		TransitionProb:        0.45,
		ReachingBurstProb:     0.30,
		RandomOrientationProb: 0.11,
	}
}

// randomOrientation samples a gravity direction uniformly on the sphere
// (scaled to 9.81 m/s²) and a random unit quaternion.
func randomOrientation(rng *rand.Rand) deviceOrientation {
	var o deviceOrientation
	var norm float64
	for i := 0; i < 3; i++ {
		o.gravity[i] = rng.NormFloat64()
		norm += o.gravity[i] * o.gravity[i]
	}
	norm = math.Sqrt(norm)
	if norm < 1e-12 {
		norm = 1
	}
	for i := range o.gravity {
		o.gravity[i] *= 9.81 / norm
	}
	norm = 0
	for i := 0; i < 4; i++ {
		o.rotation[i] = rng.NormFloat64()
		norm += o.rotation[i] * o.rotation[i]
	}
	norm = math.Sqrt(norm)
	for i := range o.rotation {
		o.rotation[i] /= norm
	}
	return o
}

// GenerateWindow synthesizes one IMU window for a full driving class. The
// window length follows imu.WindowSize (4 Hz × 5 s = 20 steps).
func GenerateWindow(rng *rand.Rand, c Class, cfg IMUGenConfig) imu.Window {
	imuClass := c.IMUClass()
	samples := make([]imu.Sample, imu.WindowSize)

	// Per-window orientation jitter (how exactly the phone sits).
	base := imuOrientations[imuClass]
	randomized := rng.Float64() < cfg.RandomOrientationProb
	if randomized {
		base = randomOrientation(rng)
	}
	var gj [3]float64
	for i := range gj {
		gj[i] = rng.NormFloat64() * cfg.OrientationJitter
	}
	var rj [4]float64
	for i := range rj {
		rj[i] = rng.NormFloat64() * cfg.OrientationJitter * 0.1
	}

	// Transitional prefix: the device starts in the pocket for the first few
	// steps of some talking/texting windows.
	transition := 0
	if imuClass != IMUNormal && rng.Float64() < cfg.TransitionProb {
		transition = 2 + rng.Intn(6)
	}

	// Reaching (and to a lesser degree the other non-phone distractions)
	// shakes the pocketed device.
	burstStart, burstLen := -1, 0
	switch {
	case c == Reaching && rng.Float64() < cfg.ReachingBurstProb:
		burstLen = 4 + rng.Intn(5)
		burstStart = rng.Intn(imu.WindowSize - burstLen)
	case (c == EatingDrinking || c == HairMakeup) && rng.Float64() < cfg.ReachingBurstProb/3:
		burstLen = 2 + rng.Intn(3)
		burstStart = rng.Intn(imu.WindowSize - burstLen)
	}

	// Per-window activity intensity: some windows are "quiet" (phone held
	// loosely, light typing), leaving the temporal pattern as the main cue.
	// Orientation-randomized windows get a stronger activity signal — the
	// hand is actively holding the phone — which keeps them solvable for a
	// temporal model even though orientation is uninformative.
	intensity := 0.3 + rng.Float64()
	if randomized {
		intensity = 0.8 + rng.Float64()*0.6
	}

	phase := rng.Float64() * 2 * math.Pi
	for t := 0; t < imu.WindowSize; t++ {
		orient := base
		effClass := imuClass
		if t < transition {
			orient = imuOrientations[IMUNormal]
			effClass = IMUNormal
		}
		inBurst := burstStart >= 0 && t >= burstStart && t < burstStart+burstLen

		var s imu.Sample
		s.TimestampMillis = int64(t) * 1000 / imu.SampleRateHz

		// Gravity with slow per-window jitter.
		for i := 0; i < 3; i++ {
			s.Gravity[i] = orient.gravity[i] + gj[i]
		}
		if inBurst {
			// Tilt toward the talking orientation mid-burst.
			for i := 0; i < 3; i++ {
				s.Gravity[i] = 0.5*s.Gravity[i] + 0.5*imuOrientations[IMUTalk].gravity[i]
			}
		}

		// Accelerometer = gravity + activity + vibration.
		for i := 0; i < 3; i++ {
			s.Accel[i] = s.Gravity[i] + rng.NormFloat64()*cfg.VibrationSigma
		}
		gyroSigma := cfg.GyroSigma
		switch effClass {
		case IMUTalk:
			// Sustained slow head/hand sway.
			sway := intensity * 0.45 * math.Sin(2*math.Pi*0.5*float64(t)/imu.SampleRateHz+phase)
			s.Accel[0] += sway
			s.Accel[2] += 0.3 * sway
			gyroSigma *= 1 + 1.2*intensity
		case IMUText:
			// Bursty typing taps: sharp z-axis spikes on random steps.
			if rng.Float64() < 0.4 {
				s.Accel[2] += intensity * (0.9 + rng.Float64()*0.9)
				gyroSigma *= 1 + 2.5*intensity
			}
		}
		if inBurst {
			gyroSigma *= 3
			s.Accel[0] += rng.NormFloat64() * 0.6
		}
		for i := 0; i < 3; i++ {
			s.Gyro[i] = rng.NormFloat64() * gyroSigma
		}

		// Rotation quaternion: orientation base + jitter, re-normalized.
		var norm float64
		for i := 0; i < 4; i++ {
			s.Rotation[i] = orient.rotation[i] + rj[i] + rng.NormFloat64()*0.06
			norm += s.Rotation[i] * s.Rotation[i]
		}
		norm = math.Sqrt(norm)
		for i := 0; i < 4; i++ {
			s.Rotation[i] /= norm
		}
		samples[t] = s
	}
	return imu.Window{Samples: samples}
}

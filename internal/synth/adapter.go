package synth

import "darnet/internal/core"

// CoreData converts the dataset into the modality-aligned form the analytics
// engine consumes.
func (d *Dataset) CoreData() *core.Data {
	data := &core.Data{
		Frames:     d.Frames(),
		Labels:     d.Labels(),
		ImgW:       d.ImgW,
		ImgH:       d.ImgH,
		Classes:    d.Classes,
		IMUClasses: NumIMUClasses,
		ClassMap:   IMUClassMap(),
	}
	// Image-only datasets (the 18-class privacy set) have no IMU stream.
	hasIMU := false
	for _, s := range d.Samples {
		if len(s.Window.Samples) > 0 {
			hasIMU = true
			break
		}
	}
	if hasIMU {
		data.Windows = d.IMUWindows()
		data.IMULabels = d.IMULabels()
	}
	// The 18-class dataset's class map does not apply; clear it to keep the
	// invariant len(ClassMap) == Classes.
	if d.Classes != NumClasses {
		data.ClassMap = nil
		data.IMUClasses = 0
		if hasIMU {
			// Defensive: a non-Table-1 dataset with IMU data is unsupported.
			data.Windows = nil
			data.IMULabels = nil
		}
	}
	return data
}

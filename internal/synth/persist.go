package synth

import (
	"encoding/gob"
	"fmt"
	"io"

	"darnet/internal/imu"
	"darnet/internal/vision"
)

// datasetBlob is the gob wire form of a dataset.
type datasetBlob struct {
	ImgW, ImgH int
	Classes    int
	Samples    []sampleBlob
}

type sampleBlob struct {
	Class   int
	Driver  int
	Pix     []float64
	Samples []imu.Sample
}

// Save writes the dataset (frames and IMU windows included) in gob format,
// so the exact generated data can be shared across processes and runs.
func (d *Dataset) Save(w io.Writer) error {
	blob := datasetBlob{ImgW: d.ImgW, ImgH: d.ImgH, Classes: d.Classes}
	blob.Samples = make([]sampleBlob, len(d.Samples))
	for i, s := range d.Samples {
		blob.Samples[i] = sampleBlob{
			Class:   int(s.Class),
			Driver:  s.Driver,
			Pix:     s.Frame.Pix,
			Samples: s.Window.Samples,
		}
	}
	if err := gob.NewEncoder(w).Encode(blob); err != nil {
		return fmt.Errorf("synth: encode dataset: %w", err)
	}
	return nil
}

// LoadDataset reads a dataset written by Save.
func LoadDataset(r io.Reader) (*Dataset, error) {
	var blob datasetBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("synth: decode dataset: %w", err)
	}
	if blob.ImgW <= 0 || blob.ImgH <= 0 || blob.Classes < 2 {
		return nil, fmt.Errorf("synth: dataset snapshot has invalid dims %dx%d / %d classes", blob.ImgW, blob.ImgH, blob.Classes)
	}
	ds := &Dataset{ImgW: blob.ImgW, ImgH: blob.ImgH, Classes: blob.Classes}
	ds.Samples = make([]*Sample, len(blob.Samples))
	for i, sb := range blob.Samples {
		if len(sb.Pix) != blob.ImgW*blob.ImgH {
			return nil, fmt.Errorf("synth: sample %d has %d pixels for %dx%d frames", i, len(sb.Pix), blob.ImgW, blob.ImgH)
		}
		if sb.Class < 0 || sb.Class >= blob.Classes {
			return nil, fmt.Errorf("synth: sample %d has class %d outside [0,%d)", i, sb.Class, blob.Classes)
		}
		frame := vision.MustNewImage(blob.ImgW, blob.ImgH)
		copy(frame.Pix, sb.Pix)
		ds.Samples[i] = &Sample{
			Class:  Class(sb.Class),
			Driver: sb.Driver,
			Frame:  frame,
			Window: imu.Window{Samples: sb.Samples},
		}
	}
	return ds, nil
}

// SplitByDriver partitions the dataset with every sample of testDriver held
// out — leave-one-driver-out evaluation, the cross-driver generalization
// protocol the paper's single 80/20 random split (which mixes each driver
// across both sides) does not measure.
func (d *Dataset) SplitByDriver(testDriver int) (train, test *Dataset, err error) {
	train = &Dataset{ImgW: d.ImgW, ImgH: d.ImgH, Classes: d.Classes}
	test = &Dataset{ImgW: d.ImgW, ImgH: d.ImgH, Classes: d.Classes}
	for _, s := range d.Samples {
		if s.Driver == testDriver {
			test.Samples = append(test.Samples, s)
		} else {
			train.Samples = append(train.Samples, s)
		}
	}
	if len(test.Samples) == 0 {
		return nil, nil, fmt.Errorf("synth: no samples for driver %d", testDriver)
	}
	if len(train.Samples) == 0 {
		return nil, nil, fmt.Errorf("synth: all samples belong to driver %d", testDriver)
	}
	return train, test, nil
}

// Drivers returns the sorted distinct driver ids present in the dataset.
func (d *Dataset) Drivers() []int {
	seen := map[int]bool{}
	for _, s := range d.Samples {
		seen[s.Driver] = true
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	// Insertion sort keeps this dependency-free and the sets are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

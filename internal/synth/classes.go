// Package synth generates the synthetic driving datasets that substitute for
// the paper's two private datasets (see DESIGN.md, "Substitutions"). It
// renders driver scenes with class-conditioned geometry plus per-driver and
// lighting variation, and synthesizes matching IMU windows with
// class-conditioned motion signatures.
//
// The generator is engineered to reproduce the *structure* that drives the
// paper's results: the image channel is genuinely ambiguous between texting,
// talking, and normal driving (small or occluded phone, overlapping poses)
// while the IMU channel separates those three classes through device
// orientation and motion; the non-phone classes carry "Normal Driving" IMU
// data exactly as in Table 1.
package synth

import "fmt"

// Class is one of the six driver behaviours of Table 1.
type Class int

// The six driving behaviour classes, in the paper's Table 1 order.
const (
	NormalDriving Class = iota
	Talking
	Texting
	EatingDrinking
	HairMakeup
	Reaching

	// NumClasses is the size of the full class space.
	NumClasses int = 6
)

// String implements fmt.Stringer with the paper's class names.
func (c Class) String() string {
	switch c {
	case NormalDriving:
		return "Normal Driving"
	case Talking:
		return "Talking"
	case Texting:
		return "Texting"
	case EatingDrinking:
		return "Eating/Drinking"
	case HairMakeup:
		return "Hair and Makeup"
	case Reaching:
		return "Reaching"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// IMU class space: the mobile device only distinguishes three situations —
// held to the ear, held for texting, or in the pocket ("Normal Driving").
// Classes 4–6 "do not require cellphone use and thus are considered as
// Normal Driving for the IMU sequence data" (Table 1 caption).
const (
	IMUNormal = 0
	IMUTalk   = 1
	IMUText   = 2

	// NumIMUClasses is the size of the IMU class space.
	NumIMUClasses = 3
)

// IMUClass maps a full driving class onto the IMU class space.
func (c Class) IMUClass() int {
	switch c {
	case Talking:
		return IMUTalk
	case Texting:
		return IMUText
	default:
		return IMUNormal
	}
}

// IMUClassMap returns the full→IMU projection for all NumClasses classes, in
// the form the naive ablation combiners consume.
func IMUClassMap() []int {
	m := make([]int, NumClasses)
	for c := 0; c < NumClasses; c++ {
		m[c] = Class(c).IMUClass()
	}
	return m
}

// Table1Counts are the per-class frame counts the paper reports collecting.
var Table1Counts = [NumClasses]int{
	NormalDriving:  5286,
	Talking:        10352,
	Texting:        9422,
	EatingDrinking: 9463,
	HairMakeup:     4848,
	Reaching:       17709,
}

// Table1HasIMU reports whether the paper collected task-specific IMU data for
// the class (classes 4–6 did not; their IMU stream is Normal Driving).
var Table1HasIMU = [NumClasses]bool{
	NormalDriving: true,
	Talking:       true,
	Texting:       true,
}

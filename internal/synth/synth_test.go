package synth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"darnet/internal/imu"
)

func TestClassStringsAndIMUMapping(t *testing.T) {
	if NormalDriving.String() != "Normal Driving" || Reaching.String() != "Reaching" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class must still render")
	}
	wants := map[Class]int{
		NormalDriving:  IMUNormal,
		Talking:        IMUTalk,
		Texting:        IMUText,
		EatingDrinking: IMUNormal,
		HairMakeup:     IMUNormal,
		Reaching:       IMUNormal,
	}
	for c, want := range wants {
		if c.IMUClass() != want {
			t.Fatalf("%v IMU class = %d, want %d", c, c.IMUClass(), want)
		}
	}
	m := IMUClassMap()
	if len(m) != NumClasses || m[int(Texting)] != IMUText {
		t.Fatalf("IMUClassMap = %v", m)
	}
}

func TestTable1CountsMatchPaper(t *testing.T) {
	total := 0
	for _, n := range Table1Counts {
		total += n
	}
	if total != 57080 {
		t.Fatalf("Table 1 total = %d, want 57080", total)
	}
	if Table1Counts[Reaching] != 17709 || Table1Counts[NormalDriving] != 5286 {
		t.Fatal("Table 1 per-class counts wrong")
	}
}

func TestGenerateTable1Shape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.005
	ds, err := GenerateTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Classes != NumClasses {
		t.Fatalf("classes = %d", ds.Classes)
	}
	counts := ds.ClassCounts()
	for c, n := range counts {
		want := int(float64(Table1Counts[c])*cfg.Scale + 0.5)
		if want < 2 {
			want = 2
		}
		if n != want {
			t.Fatalf("class %d count = %d, want %d", c, n, want)
		}
	}
	for _, s := range ds.Samples {
		if s.Frame.W != cfg.ImgW || s.Frame.H != cfg.ImgH {
			t.Fatal("frame dims wrong")
		}
		if len(s.Window.Samples) != imu.WindowSize {
			t.Fatal("IMU window length wrong")
		}
		if s.Driver < 0 || s.Driver >= cfg.Drivers {
			t.Fatal("driver id out of range")
		}
	}
}

func TestGenerateTable1Validation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ImgW = 0
	if _, err := GenerateTable1(cfg); err == nil {
		t.Fatal("expected dims error")
	}
	cfg = DefaultConfig()
	cfg.Drivers = 0
	if _, err := GenerateTable1(cfg); err == nil {
		t.Fatal("expected drivers error")
	}
	cfg = DefaultConfig()
	cfg.Scale = 0
	if _, err := GenerateTable1(cfg); err == nil {
		t.Fatal("expected scale error")
	}
}

func TestGenerateTable1Deterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.002
	a, err := GenerateTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic size")
	}
	for i := range a.Samples {
		for j := range a.Samples[i].Frame.Pix {
			if a.Samples[i].Frame.Pix[j] != b.Samples[i].Frame.Pix[j] {
				t.Fatal("frames differ for identical seeds")
			}
		}
	}
}

func TestGenerate18ClassShape(t *testing.T) {
	cfg := DefaultConfig18()
	cfg.PerClass = 3
	ds, err := Generate18Class(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Classes != 18 || ds.Len() != 18*3 {
		t.Fatalf("18-class dataset: classes=%d len=%d", ds.Classes, ds.Len())
	}
	counts := ds.ClassCounts()
	for c, n := range counts {
		if n != 3 {
			t.Fatalf("class %d count = %d", c, n)
		}
	}
	// Video-only dataset: no IMU windows.
	if len(ds.Samples[0].Window.Samples) != 0 {
		t.Fatal("18-class dataset should have no IMU data")
	}
}

func TestGenerate18ClassValidation(t *testing.T) {
	cfg := DefaultConfig18()
	cfg.PerClass = 0
	if _, err := Generate18Class(cfg); err == nil {
		t.Fatal("expected per-class error")
	}
}

func TestSplitFractions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.01
	ds, err := GenerateTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	train, test, err := ds.Split(rng, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != ds.Len() {
		t.Fatal("split loses samples")
	}
	frac := float64(test.Len()) / float64(ds.Len())
	if math.Abs(frac-0.2) > 0.02 {
		t.Fatalf("test fraction = %g", frac)
	}
	if _, _, err := ds.Split(rng, 0); err == nil {
		t.Fatal("expected fraction error")
	}
	if _, _, err := ds.Split(rng, 1); err == nil {
		t.Fatal("expected fraction error")
	}
}

func TestFramesAndLabelMatrices(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.002
	ds, err := GenerateTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := ds.Frames()
	if x.Dim(0) != ds.Len() || x.Dim(1) != cfg.ImgW*cfg.ImgH {
		t.Fatalf("frames shape %v", x.Shape())
	}
	labels := ds.Labels()
	imuLabels := ds.IMULabels()
	for i, s := range ds.Samples {
		if labels[i] != int(s.Class) {
			t.Fatal("labels misaligned")
		}
		if imuLabels[i] != s.Class.IMUClass() {
			t.Fatal("IMU labels misaligned")
		}
	}
	ws := ds.IMUWindows()
	if len(ws) != ds.Len() {
		t.Fatal("windows misaligned")
	}
}

func TestIMUOrientationsSeparateClasses(t *testing.T) {
	// Mean gravity vectors of generated windows must be closer to their own
	// class orientation than to the others — the separability that carries
	// the paper's 97% IMU-only accuracy.
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultIMUGen()
	cfg.TransitionProb = 0        // measure pure-class windows
	cfg.RandomOrientationProb = 0 // disable orientation randomization too
	for _, c := range []Class{NormalDriving, Talking, Texting} {
		w := GenerateWindow(rng, c, cfg)
		var mean [3]float64
		for _, s := range w.Samples {
			for i := 0; i < 3; i++ {
				mean[i] += s.Gravity[i]
			}
		}
		for i := range mean {
			mean[i] /= float64(len(w.Samples))
		}
		best, bestClass := math.Inf(1), -1
		for k := 0; k < NumIMUClasses; k++ {
			d := 0.0
			for i := 0; i < 3; i++ {
				diff := mean[i] - imuOrientations[k].gravity[i]
				d += diff * diff
			}
			if d < best {
				best, bestClass = d, k
			}
		}
		if bestClass != c.IMUClass() {
			t.Fatalf("%v window gravity nearest to IMU class %d, want %d", c, bestClass, c.IMUClass())
		}
	}
}

func TestIMUWindowTimestamps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := GenerateWindow(rng, Talking, DefaultIMUGen())
	if len(w.Samples) != imu.WindowSize {
		t.Fatalf("window length %d", len(w.Samples))
	}
	for t2 := 1; t2 < len(w.Samples); t2++ {
		dt := w.Samples[t2].TimestampMillis - w.Samples[t2-1].TimestampMillis
		if dt != 1000/imu.SampleRateHz {
			t.Fatalf("timestamp delta %d ms, want %d", dt, 1000/imu.SampleRateHz)
		}
	}
}

func TestRotationQuaternionsNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for c := 0; c < NumClasses; c++ {
		w := GenerateWindow(rng, Class(c), DefaultIMUGen())
		for _, s := range w.Samples {
			norm := 0.0
			for _, q := range s.Rotation {
				norm += q * q
			}
			if math.Abs(norm-1) > 1e-9 {
				t.Fatalf("class %d quaternion norm² = %g", c, norm)
			}
		}
	}
}

func TestRenderSceneClassesDiffer(t *testing.T) {
	// Distinct classes should produce visibly different mean silhouettes when
	// noise is disabled: render many frames per class and compare means.
	amb := DefaultAmbiguity()
	amb.NoiseSigma = 0
	amb.PoseJitter = 0
	rng := rand.New(rand.NewSource(5))
	d := NewDriverProfile(rng)
	const n = 8
	meanPix := func(c Class) []float64 {
		acc := make([]float64, 32*32)
		for i := 0; i < n; i++ {
			img := RenderScene(rng, 32, 32, c, d, amb)
			for j, v := range img.Pix {
				acc[j] += v / n
			}
		}
		return acc
	}
	normal := meanPix(NormalDriving)
	reach := meanPix(Reaching)
	diff := 0.0
	for j := range normal {
		diff += math.Abs(normal[j] - reach[j])
	}
	if diff < 1 {
		t.Fatalf("normal and reaching scenes nearly identical (L1 diff %g)", diff)
	}
}

func TestRender18ClassPosesDiffer(t *testing.T) {
	amb := DefaultAmbiguity()
	amb.NoiseSigma = 0
	amb.PoseJitter = 0
	rng := rand.New(rand.NewSource(6))
	d := NewDriverProfile(rng)
	a := Render18Class(rng, 32, 32, 0, d, amb)
	b := Render18Class(rng, 32, 32, 9, d, amb)
	diff := 0.0
	for j := range a.Pix {
		diff += math.Abs(a.Pix[j] - b.Pix[j])
	}
	if diff < 0.5 {
		t.Fatalf("18-class poses 0 and 9 nearly identical (L1 diff %g)", diff)
	}
}

// Property: rendered frames always have every pixel within [0, 1], for any
// class, driver, and ambiguity configuration (the vision layer's clamping
// guarantee must survive every drawing path).
func TestRenderedPixelsInRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDriverProfile(rng)
		amb := DefaultAmbiguity()
		amb.NoiseSigma = rng.Float64() * 0.3
		amb.PoseJitter = rng.Float64() * 0.1
		c := Class(rng.Intn(NumClasses))
		img := RenderScene(rng, 24, 24, c, d, amb)
		for _, v := range img.Pix {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		img18 := Render18Class(rng, 24, 24, rng.Intn(18), d, amb)
		for _, v := range img18.Pix {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: IMU windows always carry imu.WindowSize finite samples with
// monotone timestamps, for any class and generator configuration.
func TestGeneratedWindowInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultIMUGen()
		cfg.VibrationSigma = rng.Float64()
		cfg.OrientationJitter = rng.Float64() * 3
		cfg.TransitionProb = rng.Float64()
		cfg.RandomOrientationProb = rng.Float64()
		w := GenerateWindow(rng, Class(rng.Intn(NumClasses)), cfg)
		if len(w.Samples) != imu.WindowSize {
			return false
		}
		for i, s := range w.Samples {
			if i > 0 && s.TimestampMillis <= w.Samples[i-1].TimestampMillis {
				return false
			}
			for _, v := range s.Features() {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

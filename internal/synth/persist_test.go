package synth

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.003
	ds, err := GenerateTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ds.Len() || loaded.Classes != ds.Classes || loaded.ImgW != ds.ImgW {
		t.Fatalf("metadata mismatch after round trip: %d/%d", loaded.Len(), ds.Len())
	}
	for i, s := range ds.Samples {
		l := loaded.Samples[i]
		if l.Class != s.Class || l.Driver != s.Driver {
			t.Fatalf("sample %d labels differ", i)
		}
		for j := range s.Frame.Pix {
			if l.Frame.Pix[j] != s.Frame.Pix[j] {
				t.Fatalf("sample %d pixels differ", i)
			}
		}
		if len(l.Window.Samples) != len(s.Window.Samples) {
			t.Fatalf("sample %d window length differs", i)
		}
		for k := range s.Window.Samples {
			if l.Window.Samples[k] != s.Window.Samples[k] {
				t.Fatalf("sample %d window step %d differs", i, k)
			}
		}
	}
}

func TestLoadDatasetRejectsGarbage(t *testing.T) {
	if _, err := LoadDataset(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSplitByDriver(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.005
	cfg.Drivers = 3
	ds, err := GenerateTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drivers := ds.Drivers()
	if len(drivers) != 3 {
		t.Fatalf("drivers = %v", drivers)
	}
	train, test, err := ds.SplitByDriver(drivers[0])
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != ds.Len() {
		t.Fatal("split loses samples")
	}
	for _, s := range test.Samples {
		if s.Driver != drivers[0] {
			t.Fatalf("test split contains driver %d", s.Driver)
		}
	}
	for _, s := range train.Samples {
		if s.Driver == drivers[0] {
			t.Fatal("train split contains the held-out driver")
		}
	}
	if _, _, err := ds.SplitByDriver(999); err == nil {
		t.Fatal("expected unknown-driver error")
	}
}

func TestKFold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.004
	ds, err := GenerateTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	folds, err := ds.KFold(rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := map[*Sample]int{}
	for _, fold := range folds {
		train, test := fold[0], fold[1]
		if train.Len()+test.Len() != ds.Len() {
			t.Fatal("fold loses samples")
		}
		for _, s := range test.Samples {
			seen[s]++
		}
		// No overlap within a fold.
		inTest := map[*Sample]bool{}
		for _, s := range test.Samples {
			inTest[s] = true
		}
		for _, s := range train.Samples {
			if inTest[s] {
				t.Fatal("sample in both train and test of one fold")
			}
		}
	}
	// Every sample appears in exactly one test fold.
	if len(seen) != ds.Len() {
		t.Fatalf("test folds cover %d of %d samples", len(seen), ds.Len())
	}
	for _, n := range seen {
		if n != 1 {
			t.Fatal("sample appears in multiple test folds")
		}
	}
	if _, err := ds.KFold(rng, 1); err == nil {
		t.Fatal("expected k validation error")
	}
}

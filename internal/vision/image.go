// Package vision provides the image substrate: grayscale frames, the
// nearest-neighbor down-sampling distortion used by DarNet's privacy paths
// (paper §4.3 and Figure 4), simple rasterization primitives for the
// synthetic scene renderer, and PGM/PNG encoders for figure artifacts.
package vision

import (
	"fmt"
	"image"
	"image/png"
	"io"
	"math"
)

// Image is a grayscale frame with float64 intensities in [0, 1], row-major.
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage returns a black image of the given dimensions.
func NewImage(w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("vision: non-positive image dims %dx%d", w, h)
	}
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}, nil
}

// MustNewImage is NewImage but panics on invalid dims; for static sizes.
func MustNewImage(w, h int) *Image {
	img, err := NewImage(w, h)
	if err != nil {
		panic(err)
	}
	return img
}

// At returns the intensity at (x, y), or 0 outside the image.
func (m *Image) At(x, y int) float64 {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return 0
	}
	return m.Pix[y*m.W+x]
}

// Set writes intensity v (clamped to [0, 1]) at (x, y); out-of-bounds writes
// are ignored so drawing primitives can run partially off-frame.
func (m *Image) Set(x, y int, v float64) {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return
	}
	m.Pix[y*m.W+x] = clamp01(v)
}

// Fill sets every pixel to v (clamped).
func (m *Image) Fill(v float64) {
	v = clamp01(v)
	for i := range m.Pix {
		m.Pix[i] = v
	}
}

// Clone returns a deep copy.
func (m *Image) Clone() *Image {
	c := &Image{W: m.W, H: m.H, Pix: make([]float64, len(m.Pix))}
	copy(c.Pix, m.Pix)
	return c
}

// Mean returns the mean intensity.
func (m *Image) Mean() float64 {
	s := 0.0
	for _, v := range m.Pix {
		s += v
	}
	return s / float64(len(m.Pix))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// DownsampleNearest resizes the image to (w, h) with nearest-neighbor
// sampling — the distortion filter of the paper's privacy module. It returns
// an error for non-positive target dimensions.
func (m *Image) DownsampleNearest(w, h int) (*Image, error) {
	out, err := NewImage(w, h)
	if err != nil {
		return nil, fmt.Errorf("vision: downsample: %w", err)
	}
	for y := 0; y < h; y++ {
		sy := (y*m.H + m.H/2) / h
		if sy >= m.H {
			sy = m.H - 1
		}
		for x := 0; x < w; x++ {
			sx := (x*m.W + m.W/2) / w
			if sx >= m.W {
				sx = m.W - 1
			}
			out.Pix[y*w+x] = m.Pix[sy*m.W+sx]
		}
	}
	return out, nil
}

// UpsampleNearest resizes back to (w, h) by nearest neighbor. Down- then
// up-sampling reproduces the blocky frames of Figure 4 at the original
// resolution, and gives the dCNN student inputs the same width as the
// teacher's.
func (m *Image) UpsampleNearest(w, h int) (*Image, error) {
	return m.DownsampleNearest(w, h) // same index arithmetic works both ways
}

// --- Rasterization primitives used by the synthetic scene renderer ----------

// FillRect paints the axis-aligned rectangle [x0,x1)×[y0,y1) with intensity v.
func (m *Image) FillRect(x0, y0, x1, y1 int, v float64) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			m.Set(x, y, v)
		}
	}
}

// FillEllipse paints the filled ellipse centered at (cx, cy) with radii
// (rx, ry) and intensity v.
func (m *Image) FillEllipse(cx, cy, rx, ry float64, v float64) {
	if rx <= 0 || ry <= 0 {
		return
	}
	x0, x1 := int(math.Floor(cx-rx)), int(math.Ceil(cx+rx))
	y0, y1 := int(math.Floor(cy-ry)), int(math.Ceil(cy+ry))
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx := (float64(x) - cx) / rx
			dy := (float64(y) - cy) / ry
			if dx*dx+dy*dy <= 1 {
				m.Set(x, y, v)
			}
		}
	}
}

// DrawLine paints a line of the given thickness from (x0, y0) to (x1, y1).
func (m *Image) DrawLine(x0, y0, x1, y1 float64, thickness float64, v float64) {
	dx, dy := x1-x0, y1-y0
	length := math.Hypot(dx, dy)
	if length == 0 {
		m.FillEllipse(x0, y0, thickness/2, thickness/2, v)
		return
	}
	steps := int(length*2) + 1
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		m.FillEllipse(x0+t*dx, y0+t*dy, thickness/2, thickness/2, v)
	}
}

// AddNoise perturbs every pixel with values from noise(i) (e.g. a seeded
// Gaussian source), clamping to [0, 1].
func (m *Image) AddNoise(noise func(i int) float64) {
	for i := range m.Pix {
		m.Pix[i] = clamp01(m.Pix[i] + noise(i))
	}
}

// ScaleBrightness multiplies every pixel by s (clamped), modelling the
// paper's "varying degrees of lighting".
func (m *Image) ScaleBrightness(s float64) {
	for i := range m.Pix {
		m.Pix[i] = clamp01(m.Pix[i] * s)
	}
}

// --- Encoding ----------------------------------------------------------------

// WritePGM encodes the image as binary PGM (P5), 8 bits per pixel.
func (m *Image) WritePGM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", m.W, m.H); err != nil {
		return fmt.Errorf("vision: pgm header: %w", err)
	}
	buf := make([]byte, len(m.Pix))
	for i, v := range m.Pix {
		buf[i] = byte(clamp01(v)*255 + 0.5)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("vision: pgm pixels: %w", err)
	}
	return nil
}

// WritePNG encodes the image as an 8-bit grayscale PNG.
func (m *Image) WritePNG(w io.Writer) error {
	img := image.NewGray(image.Rect(0, 0, m.W, m.H))
	for i, v := range m.Pix {
		img.Pix[i] = byte(clamp01(v)*255 + 0.5)
	}
	if err := png.Encode(w, img); err != nil {
		return fmt.Errorf("vision: png encode: %w", err)
	}
	return nil
}

// ToFeatures flattens the image into a feature row (length W*H), the layout
// consumed by nn.Conv2D with InC=1.
func (m *Image) ToFeatures() []float64 {
	return append([]float64(nil), m.Pix...)
}

// DownsampleBox resizes the image to (w, h) by averaging each source box
// (box filtering). DarNet's privacy module uses nearest-neighbor sampling
// (DownsampleNearest); box filtering is provided for the down-sampling
// kernel ablation — it preserves more low-frequency content at the same
// transmission cost.
func (m *Image) DownsampleBox(w, h int) (*Image, error) {
	out, err := NewImage(w, h)
	if err != nil {
		return nil, fmt.Errorf("vision: box downsample: %w", err)
	}
	for y := 0; y < h; y++ {
		sy0 := y * m.H / h
		sy1 := (y + 1) * m.H / h
		if sy1 <= sy0 {
			sy1 = sy0 + 1
		}
		for x := 0; x < w; x++ {
			sx0 := x * m.W / w
			sx1 := (x + 1) * m.W / w
			if sx1 <= sx0 {
				sx1 = sx0 + 1
			}
			sum := 0.0
			for sy := sy0; sy < sy1 && sy < m.H; sy++ {
				for sx := sx0; sx < sx1 && sx < m.W; sx++ {
					sum += m.Pix[sy*m.W+sx]
				}
			}
			count := (min(sy1, m.H) - sy0) * (min(sx1, m.W) - sx0)
			out.Pix[y*w+x] = sum / float64(count)
		}
	}
	return out, nil
}

package vision

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewImageValidation(t *testing.T) {
	if _, err := NewImage(0, 4); err == nil {
		t.Fatal("expected error for zero width")
	}
	if _, err := NewImage(4, -1); err == nil {
		t.Fatal("expected error for negative height")
	}
	img, err := NewImage(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Pix) != 6 {
		t.Fatalf("pix length = %d", len(img.Pix))
	}
}

func TestSetAtClampingAndBounds(t *testing.T) {
	img := MustNewImage(4, 4)
	img.Set(1, 1, 2.5)
	if img.At(1, 1) != 1 {
		t.Fatalf("clamping failed: %g", img.At(1, 1))
	}
	img.Set(-1, 0, 0.5) // ignored
	img.Set(0, 99, 0.5) // ignored
	if img.At(-1, 0) != 0 || img.At(0, 99) != 0 {
		t.Fatal("out-of-bounds reads must return 0")
	}
}

func TestDownsampleNearestBlocky(t *testing.T) {
	// 4x4 image of four quadrants downsampled to 2x2 must pick one pixel per
	// quadrant.
	img := MustNewImage(4, 4)
	img.FillRect(0, 0, 2, 2, 0.1)
	img.FillRect(2, 0, 4, 2, 0.4)
	img.FillRect(0, 2, 2, 4, 0.7)
	img.FillRect(2, 2, 4, 4, 1.0)
	small, err := img.DownsampleNearest(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.4, 0.7, 1.0}
	for i, w := range want {
		if math.Abs(small.Pix[i]-w) > 1e-12 {
			t.Fatalf("quadrant %d = %g, want %g", i, small.Pix[i], w)
		}
	}
}

func TestDownsampleValidation(t *testing.T) {
	img := MustNewImage(4, 4)
	if _, err := img.DownsampleNearest(0, 2); err == nil {
		t.Fatal("expected error for zero target width")
	}
}

func TestDownUpsampleRoundTripPreservesBlocks(t *testing.T) {
	// Down to half then back up: each 2x2 block becomes constant.
	rng := rand.New(rand.NewSource(1))
	img := MustNewImage(8, 8)
	for i := range img.Pix {
		img.Pix[i] = rng.Float64()
	}
	small, err := img.DownsampleNearest(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := small.UpsampleNearest(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if big.W != 8 || big.H != 8 {
		t.Fatalf("upsample dims %dx%d", big.W, big.H)
	}
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			v := big.At(bx*2, by*2)
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					if big.At(bx*2+dx, by*2+dy) != v {
						t.Fatalf("block (%d,%d) not constant after round trip", bx, by)
					}
				}
			}
		}
	}
}

// Property: downsample to identical dims is the identity.
func TestDownsampleIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(12), 1+rng.Intn(12)
		img := MustNewImage(w, h)
		for i := range img.Pix {
			img.Pix[i] = rng.Float64()
		}
		same, err := img.DownsampleNearest(w, h)
		if err != nil {
			return false
		}
		for i := range img.Pix {
			if same.Pix[i] != img.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFillEllipseAndLine(t *testing.T) {
	img := MustNewImage(20, 20)
	img.FillEllipse(10, 10, 4, 4, 1)
	if img.At(10, 10) != 1 {
		t.Fatal("ellipse center not painted")
	}
	if img.At(0, 0) != 0 {
		t.Fatal("ellipse painted outside radius")
	}
	if img.At(10, 15) != 0 {
		t.Fatal("ellipse exceeded its radius")
	}

	img2 := MustNewImage(20, 20)
	img2.DrawLine(2, 2, 17, 17, 2, 0.8)
	if img2.At(10, 10) != 0.8 {
		t.Fatal("line midpoint not painted")
	}
	if img2.At(2, 17) != 0 {
		t.Fatal("line painted far off its path")
	}

	img3 := MustNewImage(10, 10)
	img3.DrawLine(5, 5, 5, 5, 3, 0.5) // degenerate: a dot
	if img3.At(5, 5) != 0.5 {
		t.Fatal("degenerate line should paint a dot")
	}
}

func TestScaleBrightnessAndNoise(t *testing.T) {
	img := MustNewImage(4, 1)
	img.Fill(0.5)
	img.ScaleBrightness(1.5)
	if img.At(0, 0) != 0.75 {
		t.Fatalf("brightness scale = %g", img.At(0, 0))
	}
	img.AddNoise(func(i int) float64 { return 10 }) // clamps to 1
	if img.At(0, 0) != 1 {
		t.Fatalf("noise clamp = %g", img.At(0, 0))
	}
}

func TestWritePGM(t *testing.T) {
	img := MustNewImage(2, 2)
	img.Pix = []float64{0, 0.5, 1, 0.25}
	var buf bytes.Buffer
	if err := img.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	wantHeader := "P5\n2 2\n255\n"
	if string(b[:len(wantHeader)]) != wantHeader {
		t.Fatalf("pgm header = %q", b[:len(wantHeader)])
	}
	pix := b[len(wantHeader):]
	if len(pix) != 4 {
		t.Fatalf("pgm body length %d", len(pix))
	}
	if pix[0] != 0 || pix[2] != 255 {
		t.Fatalf("pgm pixels = %v", pix)
	}
}

func TestWritePNG(t *testing.T) {
	img := MustNewImage(3, 3)
	img.Fill(0.5)
	var buf bytes.Buffer
	if err := img.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	// PNG signature.
	sig := []byte{0x89, 'P', 'N', 'G'}
	if !bytes.HasPrefix(buf.Bytes(), sig) {
		t.Fatal("output is not a PNG")
	}
}

func TestToFeaturesIsCopy(t *testing.T) {
	img := MustNewImage(2, 2)
	img.Fill(0.3)
	f := img.ToFeatures()
	f[0] = 99
	if img.Pix[0] != 0.3 {
		t.Fatal("ToFeatures must return a copy")
	}
	if len(f) != 4 {
		t.Fatalf("features length %d", len(f))
	}
}

func TestCloneAndMean(t *testing.T) {
	img := MustNewImage(2, 1)
	img.Pix = []float64{0.2, 0.6}
	c := img.Clone()
	c.Pix[0] = 0.9
	if img.Pix[0] != 0.2 {
		t.Fatal("clone shares storage")
	}
	if math.Abs(img.Mean()-0.4) > 1e-12 {
		t.Fatalf("mean = %g", img.Mean())
	}
}

func TestDownsampleBoxAverages(t *testing.T) {
	img := MustNewImage(4, 4)
	img.FillRect(0, 0, 2, 2, 0.0)
	img.FillRect(2, 0, 4, 2, 1.0)
	img.FillRect(0, 2, 2, 4, 0.5)
	img.FillRect(2, 2, 4, 4, 0.25)
	small, err := img.DownsampleBox(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.0, 1.0, 0.5, 0.25}
	for i, w := range want {
		if math.Abs(small.Pix[i]-w) > 1e-12 {
			t.Fatalf("box[%d] = %g, want %g", i, small.Pix[i], w)
		}
	}
	// A checkerboard averages to 0.5 under box filtering but not under
	// nearest-neighbor.
	cb := MustNewImage(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if (x+y)%2 == 0 {
				cb.Set(x, y, 1)
			}
		}
	}
	box, err := cb.DownsampleBox(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range box.Pix {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("checkerboard box[%d] = %g, want 0.5", i, v)
		}
	}
	if _, err := cb.DownsampleBox(0, 1); err == nil {
		t.Fatal("expected dims error")
	}
}

// Property: box downsample to identical dims is the identity.
func TestDownsampleBoxIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(10), 1+rng.Intn(10)
		img := MustNewImage(w, h)
		for i := range img.Pix {
			img.Pix[i] = rng.Float64()
		}
		same, err := img.DownsampleBox(w, h)
		if err != nil {
			return false
		}
		for i := range img.Pix {
			if math.Abs(same.Pix[i]-img.Pix[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAlerterValidation(t *testing.T) {
	if _, err := NewAlerter(-1, 1, 1); err == nil {
		t.Fatal("expected negative-class error")
	}
	if _, err := NewAlerter(0, 0, 1); err == nil {
		t.Fatal("expected trigger error")
	}
	if _, err := NewAlerter(0, 1, 0); err == nil {
		t.Fatal("expected clear error")
	}
}

func TestAlerterRaisesAfterConsecutiveDistraction(t *testing.T) {
	a, err := NewAlerter(0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ev := a.Observe(2); ev != AlertNone {
		t.Fatalf("first distracted window raised %v", ev)
	}
	if ev := a.Observe(2); ev != AlertNone {
		t.Fatalf("second distracted window raised %v", ev)
	}
	if ev := a.Observe(1); ev != AlertRaised {
		t.Fatalf("third distracted window gave %v", ev)
	}
	if !a.Active() {
		t.Fatal("alert should be active")
	}
	// Further distraction does not re-raise.
	if ev := a.Observe(2); ev != AlertNone {
		t.Fatalf("re-raise: %v", ev)
	}
}

func TestAlerterHysteresisIgnoresSingleBlips(t *testing.T) {
	a, err := NewAlerter(0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// One misclassified window must not raise.
	a.Observe(1)
	if ev := a.Observe(0); ev != AlertNone || a.Active() {
		t.Fatal("single blip raised an alert")
	}
	// Raise properly.
	a.Observe(1)
	if ev := a.Observe(1); ev != AlertRaised {
		t.Fatal("alert not raised")
	}
	// One normal window must not clear.
	a.Observe(0)
	if !a.Active() {
		t.Fatal("single normal window cleared the alert")
	}
	// A distracted window resets the clear counter.
	a.Observe(2)
	a.Observe(0)
	a.Observe(0)
	if !a.Active() {
		t.Fatal("clear counter was not reset by distraction")
	}
	if ev := a.Observe(0); ev != AlertCleared || a.Active() {
		t.Fatalf("third consecutive normal window gave %v", ev)
	}
	if a.LastClass() != 0 {
		t.Fatalf("last class = %d", a.LastClass())
	}
}

func TestAlertEventStrings(t *testing.T) {
	if AlertRaised.String() != "raised" || AlertCleared.String() != "cleared" || AlertNone.String() != "none" {
		t.Fatal("event strings wrong")
	}
	if !strings.Contains(AlertEvent(9).String(), "9") {
		t.Fatal("unknown event should render its value")
	}
}

// Property: Active() flips exactly on Raised/Cleared events and never
// otherwise, for arbitrary class streams.
func TestAlerterTransitionConsistencyProperty(t *testing.T) {
	f := func(stream []uint8) bool {
		a, err := NewAlerter(0, 2, 2)
		if err != nil {
			return false
		}
		prev := a.Active()
		for _, c := range stream {
			ev := a.Observe(int(c % 4))
			now := a.Active()
			switch ev {
			case AlertRaised:
				if prev || !now {
					return false
				}
			case AlertCleared:
				if !prev || now {
					return false
				}
			case AlertNone:
				if prev != now {
					return false
				}
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

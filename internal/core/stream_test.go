package core

import (
	"math"
	"testing"
)

// TestIMUStreamMatchesBatchPath proves the streaming inference surface equals
// the batch one: pushing a window's samples one at a time through IMUStream
// and fusing via Fuse must reproduce ClassifyCtx's result bit-for-bit (the
// engine's BiLSTM stack takes the stream's buffered fallback; the
// unidirectional incremental path is property-tested in internal/rnn).
func TestIMUStreamMatchesBatchPath(t *testing.T) {
	if testing.Short() {
		t.Skip("engine training skipped in -short mode")
	}
	eng, train := trainTinyEngine(t)
	st, err := eng.NewIMUStream()
	if err != nil {
		t.Fatal(err)
	}
	frame := train.Frames.Row(0)
	for win := 0; win < 2; win++ {
		window := train.Windows[win]
		var rnnProbs []float64
		for i, smp := range window.Samples {
			ready, err := st.Push(smp)
			if err != nil {
				t.Fatalf("window %d push %d: %v", win, i, err)
			}
			if ready != (i == len(window.Samples)-1) {
				t.Fatalf("window %d push %d: ready = %v", win, i, ready)
			}
			if ready {
				rnnProbs, err = st.Classify()
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		got, err := eng.Fuse(nil, rnnProbs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.Classify(nil, window)
		if err != nil {
			t.Fatal(err)
		}
		if got.Mode != ModeRNNOnly || got.Class != want.Class {
			t.Fatalf("window %d: stream fuse class %d mode %v, batch class %d", win, got.Class, got.Mode, want.Class)
		}
		for j := range got.Probs {
			if math.Float64bits(got.Probs[j]) != math.Float64bits(want.Probs[j]) {
				t.Fatalf("window %d class %d: stream %v != batch %v", win, j, got.Probs[j], want.Probs[j])
			}
		}
	}

	t.Run("fuse both modalities", func(t *testing.T) {
		cnnProbs, err := eng.FrameProbs(frame)
		if err != nil {
			t.Fatal(err)
		}
		window := train.Windows[0]
		st.Reset()
		var rnnProbs []float64
		for _, smp := range window.Samples {
			if ready, err := st.Push(smp); err != nil {
				t.Fatal(err)
			} else if ready {
				if rnnProbs, err = st.Classify(); err != nil {
					t.Fatal(err)
				}
			}
		}
		got, err := eng.Fuse(cnnProbs, rnnProbs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.Classify(frame, window)
		if err != nil {
			t.Fatal(err)
		}
		if got.Mode != ModeFused || got.Class != want.Class {
			t.Fatalf("fused stream class %d mode %v, batch class %d", got.Class, got.Mode, want.Class)
		}
		for j := range got.Probs {
			if math.Float64bits(got.Probs[j]) != math.Float64bits(want.Probs[j]) {
				t.Fatalf("class %d: stream %v != batch %v", j, got.Probs[j], want.Probs[j])
			}
		}
	})

	t.Run("fuse rejects no modalities", func(t *testing.T) {
		if _, err := eng.Fuse(nil, nil); err == nil {
			t.Fatal("Fuse(nil, nil) must fail")
		}
	})
}

// Package core implements DarNet's analytics engine — the paper's primary
// contribution: per-modality deep models (a MicroInception frame CNN and a
// deep bidirectional LSTM for IMU windows), a baseline SVM, and the Bayesian
// Network ensemble combiner that fuses the modalities into a single
// classification (Figure 1). The engine maintains the paper's 1-to-1
// relationship between device data streams and models (§3.3): each modality
// is trained independently and combined at inference time, so new devices
// can be added without retraining existing models.
package core

import (
	"fmt"
	"math/rand"

	"darnet/internal/imu"
	"darnet/internal/nn"
	"darnet/internal/tensor"
)

// Data is the modality-aligned dataset the engine trains and evaluates on:
// row i of Frames, Windows[i], Labels[i], and IMULabels[i] describe the same
// instant.
type Data struct {
	Frames     *tensor.Tensor // (N, ImgW*ImgH) grayscale rows
	Windows    []imu.Window   // aligned IMU windows (empty windows allowed for image-only sets)
	Labels     []int          // full-class labels
	IMULabels  []int          // labels projected onto the IMU class space
	ImgW, ImgH int
	Classes    int
	IMUClasses int
	// ClassMap projects full classes onto IMU classes (for naive combiners).
	ClassMap []int
}

// Validate checks the internal alignment of the dataset.
func (d *Data) Validate() error {
	if d.Frames == nil || d.Frames.Dims() != 2 {
		return fmt.Errorf("core: data needs a 2-D frame matrix")
	}
	n := d.Frames.Dim(0)
	if len(d.Labels) != n {
		return fmt.Errorf("core: %d labels for %d frames", len(d.Labels), n)
	}
	if d.Frames.Dim(1) != d.ImgW*d.ImgH {
		return fmt.Errorf("core: frame width %d != %dx%d", d.Frames.Dim(1), d.ImgW, d.ImgH)
	}
	if d.Classes < 2 {
		return fmt.Errorf("core: need at least 2 classes")
	}
	if len(d.Windows) != 0 {
		if len(d.Windows) != n || len(d.IMULabels) != n {
			return fmt.Errorf("core: IMU stream misaligned: %d windows, %d IMU labels, %d frames", len(d.Windows), len(d.IMULabels), n)
		}
		if d.IMUClasses < 2 {
			return fmt.Errorf("core: need at least 2 IMU classes")
		}
		if len(d.ClassMap) != d.Classes {
			return fmt.Errorf("core: class map has %d entries for %d classes", len(d.ClassMap), d.Classes)
		}
	}
	return nil
}

// Len returns the number of aligned samples.
func (d *Data) Len() int { return d.Frames.Dim(0) }

// CNNConfig parameterizes the MicroInception frame classifier — the
// CPU-scale stand-in for the paper's fine-tuned Inception-V3 (see DESIGN.md,
// "Substitutions"). The architecture keeps Inception's signature parallel
// 1×1/3×3/5×5/pool towers with channel concatenation.
type CNNConfig struct {
	StemChannels int     // stem conv output channels
	Dropout      float64 // drop probability before the classification head
}

// DefaultCNNConfig returns the calibrated default.
func DefaultCNNConfig() CNNConfig {
	return CNNConfig{StemChannels: 12, Dropout: 0.15}
}

// BuildFrameCNN constructs the MicroInception network for w×h grayscale
// frames and the given class count: stem conv → BN → pool → inception → BN →
// pool → inception → BN → global average pool → dropout → dense head.
func BuildFrameCNN(rng *rand.Rand, w, h, classes int, cfg CNNConfig) (*nn.Sequential, error) {
	if w < 8 || h < 8 {
		return nil, fmt.Errorf("core: frame size %dx%d too small for the CNN (min 8x8)", w, h)
	}
	if classes < 2 {
		return nil, fmt.Errorf("core: need at least 2 classes")
	}
	stem := cfg.StemChannels
	if stem <= 0 {
		stem = 12
	}
	net := nn.NewSequential("framecnn")
	net.Add(nn.NewConv2D("stem", rng, tensor.ConvGeom{
		InC: 1, InH: h, InW: w, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	}, stem))
	net.Add(nn.NewBatchNorm("bn0", stem*h*w, stem))
	net.Add(nn.NewReLU())
	net.Add(nn.NewMaxPool2D("pool1", tensor.ConvGeom{
		InC: stem, InH: h, InW: w, KH: 2, KW: 2, StrideH: 2, StrideW: 2,
	}))
	h2, w2 := h/2, w/2
	sp1 := nn.InceptionSpec{
		InC: stem, InH: h2, InW: w2,
		C1x1: 8, C3x3Reduce: 8, C3x3: 16, C5x5Reduce: 4, C5x5: 4, CPool: 4,
	}
	net.Add(nn.NewInception("mix1", rng, sp1))
	net.Add(nn.NewBatchNorm("bn1", sp1.OutC()*h2*w2, sp1.OutC()))
	net.Add(nn.NewMaxPool2D("pool2", tensor.ConvGeom{
		InC: sp1.OutC(), InH: h2, InW: w2, KH: 2, KW: 2, StrideH: 2, StrideW: 2,
	}))
	h3, w3 := h2/2, w2/2
	sp2 := nn.InceptionSpec{
		InC: sp1.OutC(), InH: h3, InW: w3,
		C1x1: 16, C3x3Reduce: 8, C3x3: 20, C5x5Reduce: 4, C5x5: 6, CPool: 6,
	}
	net.Add(nn.NewInception("mix2", rng, sp2))
	net.Add(nn.NewBatchNorm("bn2", sp2.OutC()*h3*w3, sp2.OutC()))
	net.Add(nn.NewGlobalAvgPool("gap", sp2.OutC(), h3, w3))
	if cfg.Dropout > 0 {
		net.Add(nn.NewDropout("drop", rng, cfg.Dropout))
	}
	net.Add(nn.NewDense("head", rng, sp2.OutC(), classes))
	return net, nil
}

// BuildPlainCNN constructs a plain convolutional stack (no inception
// modules) at a comparable parameter budget — the ablation counterpart of
// BuildFrameCNN.
func BuildPlainCNN(rng *rand.Rand, w, h, classes int, cfg CNNConfig) (*nn.Sequential, error) {
	if w < 8 || h < 8 {
		return nil, fmt.Errorf("core: frame size %dx%d too small for the CNN (min 8x8)", w, h)
	}
	stem := cfg.StemChannels
	if stem <= 0 {
		stem = 12
	}
	net := nn.NewSequential("plaincnn")
	net.Add(nn.NewConv2D("c0", rng, tensor.ConvGeom{
		InC: 1, InH: h, InW: w, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	}, stem))
	net.Add(nn.NewBatchNorm("bn0", stem*h*w, stem))
	net.Add(nn.NewReLU())
	net.Add(nn.NewMaxPool2D("p0", tensor.ConvGeom{
		InC: stem, InH: h, InW: w, KH: 2, KW: 2, StrideH: 2, StrideW: 2,
	}))
	h2, w2 := h/2, w/2
	net.Add(nn.NewConv2D("c1", rng, tensor.ConvGeom{
		InC: stem, InH: h2, InW: w2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	}, 32))
	net.Add(nn.NewBatchNorm("bn1", 32*h2*w2, 32))
	net.Add(nn.NewReLU())
	net.Add(nn.NewMaxPool2D("p1", tensor.ConvGeom{
		InC: 32, InH: h2, InW: w2, KH: 2, KW: 2, StrideH: 2, StrideW: 2,
	}))
	h3, w3 := h2/2, w2/2
	net.Add(nn.NewConv2D("c2", rng, tensor.ConvGeom{
		InC: 32, InH: h3, InW: w3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
	}, 48))
	net.Add(nn.NewBatchNorm("bn2", 48*h3*w3, 48))
	net.Add(nn.NewReLU())
	net.Add(nn.NewGlobalAvgPool("gap", 48, h3, w3))
	if cfg.Dropout > 0 {
		net.Add(nn.NewDropout("drop", rng, cfg.Dropout))
	}
	net.Add(nn.NewDense("head", rng, 48, classes))
	return net, nil
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"darnet/internal/imu"
)

// trainTinyEngine trains a small but functional engine for degraded-mode
// tests (shared via t.Run subtests to pay the training cost once).
func trainTinyEngine(t *testing.T) (*Engine, *Data) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	train := tinyData(rng, 60, 16, 16, 3, 3)
	cfg := DefaultTrainConfig()
	cfg.CNNEpochs = 8
	cfg.RNNEpochs = 3
	cfg.RNNHidden = 8
	cfg.RNNLayers = 1
	cfg.SVMEpochs = 5
	eng, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, train
}

func checkDistribution(t *testing.T, probs []float64, n int) {
	t.Helper()
	if len(probs) != n {
		t.Fatalf("posterior has %d entries, want %d", len(probs), n)
	}
	sum := 0.0
	for _, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("posterior entry %v out of range", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posterior sums to %v, want 1", sum)
	}
}

func TestClassifyDegradedModes(t *testing.T) {
	if testing.Short() {
		t.Skip("degraded-mode training skipped in -short mode")
	}
	eng, train := trainTinyEngine(t)
	frame := train.Frames.Row(0)
	window := train.Windows[0]

	t.Run("fused", func(t *testing.T) {
		c, err := eng.Classify(frame, window)
		if err != nil {
			t.Fatal(err)
		}
		if c.Mode != ModeFused || c.Degraded() {
			t.Fatalf("mode = %v, want fused", c.Mode)
		}
		if c.CNNProbs == nil || c.RNNProbs == nil {
			t.Fatal("fused classification must expose both parent distributions")
		}
		if c.Confidence != c.Probs[c.Class] {
			t.Fatalf("fused confidence %v != posterior peak %v", c.Confidence, c.Probs[c.Class])
		}
	})

	t.Run("cnn-only when window absent", func(t *testing.T) {
		before := mDegraded.Value()
		c, err := eng.Classify(frame, imu.Window{})
		if err != nil {
			t.Fatal(err)
		}
		if c.Mode != ModeCNNOnly || !c.Degraded() {
			t.Fatalf("mode = %v, want cnn-only", c.Mode)
		}
		if c.RNNProbs != nil {
			t.Fatal("absent modality must report a nil distribution")
		}
		checkDistribution(t, c.Probs, eng.Classes)
		if want := c.Probs[c.Class] * DegradedConfidenceDiscount; c.Confidence != want {
			t.Fatalf("confidence %v, want discounted %v", c.Confidence, want)
		}
		if got := mDegraded.Value() - before; got != 1 {
			t.Fatalf("darnet_core_degraded_classify_total moved by %d, want 1", got)
		}
		// With a uniform RNN parent the decision is the CNN's evidence through
		// the BN: it must agree with the CNN's own argmax reweighted by class
		// priors — at minimum it must still be a coherent decision.
		full, err := eng.Classify(frame, window)
		if err != nil {
			t.Fatal(err)
		}
		if full.Mode != ModeFused {
			t.Fatalf("control classification degraded unexpectedly: %v", full.Mode)
		}
	})

	t.Run("rnn-only when frame absent", func(t *testing.T) {
		before := mDegraded.Value()
		c, err := eng.Classify(nil, window)
		if err != nil {
			t.Fatal(err)
		}
		if c.Mode != ModeRNNOnly || !c.Degraded() {
			t.Fatalf("mode = %v, want rnn-only", c.Mode)
		}
		if c.CNNProbs != nil {
			t.Fatal("absent modality must report a nil distribution")
		}
		checkDistribution(t, c.Probs, eng.Classes)
		if want := c.Probs[c.Class] * DegradedConfidenceDiscount; c.Confidence != want {
			t.Fatalf("confidence %v, want discounted %v", c.Confidence, want)
		}
		if got := mDegraded.Value() - before; got != 1 {
			t.Fatalf("darnet_core_degraded_classify_total moved by %d, want 1", got)
		}
	})

	t.Run("both absent errors", func(t *testing.T) {
		if _, err := eng.Classify(nil, imu.Window{}); err == nil {
			t.Fatal("classify with no modalities must fail")
		}
	})

	t.Run("bad frame still rejected", func(t *testing.T) {
		if _, err := eng.Classify([]float64{1, 2, 3}, window); err == nil {
			t.Fatal("wrong-size frame must fail, not silently degrade")
		}
	})
}

func TestClassifyModeStrings(t *testing.T) {
	cases := map[ClassifyMode]string{
		ModeFused:       "fused",
		ModeCNNOnly:     "cnn-only",
		ModeRNNOnly:     "rnn-only",
		ClassifyMode(9): "ClassifyMode(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

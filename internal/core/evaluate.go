package core

import (
	"fmt"

	"darnet/internal/bayes"
	"darnet/internal/imu"
	"darnet/internal/metrics"
	"darnet/internal/nn"
	"darnet/internal/tensor"
)

// Evaluation holds every number the paper's Table 2 and Figure 5 report,
// plus the IMU-only comparisons from §5.2 and the naive-combiner ablations.
type Evaluation struct {
	// Table 2: Top-1 of the three architectures.
	CNNRNN float64 // DarNet: CNN + RNN via Bayesian Network
	CNNSVM float64 // CNN + SVM via Bayesian Network
	CNN    float64 // frame data only

	// §5.2: IMU-sequence-only accuracies (3-class).
	RNNOnly float64
	SVMOnly float64

	// Figure 5 confusion matrices.
	ConfusionCNNRNN *metrics.ConfusionMatrix
	ConfusionCNNSVM *metrics.ConfusionMatrix
	ConfusionCNN    *metrics.ConfusionMatrix

	// Ablations: naive combiners instead of the Bayesian Network.
	ProductCombine float64
	AverageCombine float64

	// Calibration: expected calibration error of the frame CNN's and the
	// fused CNN+RNN posterior's probabilities (10 bins). Calibration governs
	// how well naive probability fusion can compete with the learned
	// Bayesian Network combiner.
	CNNECE   float64
	FusedECE float64
}

// Evaluate runs every model and ensemble on the test set.
func (e *Engine) Evaluate(test *Data, classNames []string) (*Evaluation, error) {
	if err := test.Validate(); err != nil {
		return nil, err
	}
	if len(test.Windows) == 0 {
		return nil, fmt.Errorf("core: evaluation requires the IMU stream")
	}
	if len(classNames) != e.Classes {
		return nil, fmt.Errorf("core: %d class names for %d classes", len(classNames), e.Classes)
	}
	n := test.Len()

	// Per-modality probability distributions.
	cnnProbs, err := nn.PredictProbs(e.CNN, test.Frames, 64)
	if err != nil {
		return nil, fmt.Errorf("core: cnn test probs: %w", err)
	}
	rnnProbs := make([][]float64, n)
	svmProbs := make([][]float64, n)
	for i, w := range test.Windows {
		rp, err := e.RNN.PredictProbs(e.IMUStats.Normalize(w))
		if err != nil {
			return nil, fmt.Errorf("core: rnn test probs %d: %w", i, err)
		}
		rnnProbs[i] = rp
		sp, err := e.SVM.PredictProbs(e.IMUStats.NormalizeFlat(w))
		if err != nil {
			return nil, fmt.Errorf("core: svm test probs %d: %w", i, err)
		}
		svmProbs[i] = sp
	}

	ev := &Evaluation{}
	cmCNN, err := metrics.NewConfusionMatrix(classNames)
	if err != nil {
		return nil, err
	}
	cmRNN, err := metrics.NewConfusionMatrix(classNames)
	if err != nil {
		return nil, err
	}
	cmSVM, err := metrics.NewConfusionMatrix(classNames)
	if err != nil {
		return nil, err
	}

	cnnProbRows := make([][]float64, n)
	fusedProbRows := make([][]float64, n)
	var prodHits, avgHits, rnnOnlyHits, svmOnlyHits int
	for i := 0; i < n; i++ {
		cp := cnnProbs.Row(i)
		y := test.Labels[i]
		cnnProbRows[i] = append([]float64(nil), cp...)

		cnnPred := bayes.ArgMax(cp)
		if err := cmCNN.Observe(y, cnnPred); err != nil {
			return nil, err
		}

		bnRNNPost, err := e.BNWithRNN.Combine(cp, rnnProbs[i])
		if err != nil {
			return nil, fmt.Errorf("core: combine CNN+RNN %d: %w", i, err)
		}
		fusedProbRows[i] = bnRNNPost
		if err := cmRNN.Observe(y, bayes.ArgMax(bnRNNPost)); err != nil {
			return nil, err
		}

		bnSVMPost, err := e.BNWithSVM.Combine(cp, svmProbs[i])
		if err != nil {
			return nil, fmt.Errorf("core: combine CNN+SVM %d: %w", i, err)
		}
		if err := cmSVM.Observe(y, bayes.ArgMax(bnSVMPost)); err != nil {
			return nil, err
		}

		prod, err := bayes.ProductCombine(cp, rnnProbs[i], e.ClassMap)
		if err != nil {
			return nil, err
		}
		if bayes.ArgMax(prod) == y {
			prodHits++
		}
		avg, err := bayes.AverageCombine(cp, rnnProbs[i], e.ClassMap)
		if err != nil {
			return nil, err
		}
		if bayes.ArgMax(avg) == y {
			avgHits++
		}

		if bayes.ArgMax(rnnProbs[i]) == test.IMULabels[i] {
			rnnOnlyHits++
		}
		if bayes.ArgMax(svmProbs[i]) == test.IMULabels[i] {
			svmOnlyHits++
		}
	}

	ev.CNN = cmCNN.Top1()
	ev.CNNRNN = cmRNN.Top1()
	ev.CNNSVM = cmSVM.Top1()
	ev.ConfusionCNN = cmCNN
	ev.ConfusionCNNRNN = cmRNN
	ev.ConfusionCNNSVM = cmSVM
	ev.ProductCombine = float64(prodHits) / float64(n)
	ev.AverageCombine = float64(avgHits) / float64(n)
	ev.RNNOnly = float64(rnnOnlyHits) / float64(n)
	ev.SVMOnly = float64(svmOnlyHits) / float64(n)
	if ev.CNNECE, err = metrics.ECE(cnnProbRows, test.Labels, 10); err != nil {
		return nil, err
	}
	if ev.FusedECE, err = metrics.ECE(fusedProbRows, test.Labels, 10); err != nil {
		return nil, err
	}
	return ev, nil
}

// EvaluateCNNOnly evaluates only the frame CNN (used by image-only datasets
// like the 18-class privacy set).
func EvaluateCNNOnly(cnn *nn.Sequential, frames *tensor.Tensor, labels []int) (float64, error) {
	pred, err := nn.PredictClasses(cnn, frames, 64)
	if err != nil {
		return 0, err
	}
	return nn.Accuracy(pred, labels)
}

// SequencesOf converts a window list into normalized sequence tensors using
// the engine's fitted statistics.
func (e *Engine) SequencesOf(windows []imu.Window) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(windows))
	for i, w := range windows {
		out[i] = e.IMUStats.Normalize(w)
	}
	return out
}

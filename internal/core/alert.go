package core

import (
	"fmt"
)

// Alerter turns the per-window classification stream into the real-time
// driver/fleet-manager alerts the paper motivates (§1: "providing real-time
// alerts to drivers and fleet managers"). It debounces with hysteresis: an
// alert is raised after Trigger consecutive distracted windows and cleared
// after Clear consecutive normal windows, so single misclassified windows —
// which the paper's confusion matrices show are common — do not flap the
// alert state.
type Alerter struct {
	// NormalClass is the class index considered non-distracted.
	NormalClass int
	// Trigger is the number of consecutive distracted windows that raises
	// the alert.
	Trigger int
	// Clear is the number of consecutive normal windows that clears it.
	Clear int

	active        bool
	distractedRun int
	normalRun     int
	lastClass     int
}

// AlertEvent describes a state change emitted by Observe.
type AlertEvent int

// Alert state transitions.
const (
	AlertNone AlertEvent = iota // no state change
	AlertRaised
	AlertCleared
)

// String implements fmt.Stringer.
func (e AlertEvent) String() string {
	switch e {
	case AlertNone:
		return "none"
	case AlertRaised:
		return "raised"
	case AlertCleared:
		return "cleared"
	default:
		return fmt.Sprintf("AlertEvent(%d)", int(e))
	}
}

// NewAlerter returns an alerter with the given debounce thresholds.
func NewAlerter(normalClass, trigger, clear int) (*Alerter, error) {
	if normalClass < 0 {
		return nil, fmt.Errorf("core: negative normal class %d", normalClass)
	}
	if trigger < 1 || clear < 1 {
		return nil, fmt.Errorf("core: alert thresholds must be >= 1, got trigger=%d clear=%d", trigger, clear)
	}
	return &Alerter{NormalClass: normalClass, Trigger: trigger, Clear: clear, lastClass: normalClass}, nil
}

// Observe feeds one window classification and returns the resulting alert
// transition (AlertNone if the state did not change).
func (a *Alerter) Observe(class int) AlertEvent {
	a.lastClass = class
	if class == a.NormalClass {
		a.normalRun++
		a.distractedRun = 0
		if a.active && a.normalRun >= a.Clear {
			a.active = false
			mAlertsCleared.Inc()
			gAlertActive.Set(0)
			return AlertCleared
		}
		return AlertNone
	}
	a.distractedRun++
	a.normalRun = 0
	if !a.active && a.distractedRun >= a.Trigger {
		a.active = true
		mAlertsRaised.Inc()
		gAlertActive.Set(1)
		return AlertRaised
	}
	return AlertNone
}

// Active reports whether an alert is currently raised.
func (a *Alerter) Active() bool { return a.active }

// LastClass returns the most recently observed class.
func (a *Alerter) LastClass() int { return a.lastClass }

package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"darnet/internal/bayes"
	"darnet/internal/collect"
	"darnet/internal/imu"
	"darnet/internal/privacy"
	"darnet/internal/telemetry"
	"darnet/internal/vision"
	"darnet/internal/wire"
)

// ServeClassify runs the remote-configuration analytics loop over one
// connection (paper §3.2/§4.1): it answers ClassifyRequest messages with the
// engine's fused classification until the peer disconnects. Malformed
// requests are answered with an error response rather than dropping the
// connection, so one bad observation does not interrupt the stream.
//
// ServeClassify serves with a background context; a server with a shutdown
// signal should use ServeClassifyCtx so cancellation reaches the loop.
func (e *Engine) ServeClassify(conn *wire.Conn) error {
	return e.ServeClassifyCtx(context.Background(), conn)
}

// ServeClassifyCtx is ServeClassify with cancellation: the loop exits
// between requests once ctx is canceled, and each request's span context
// derives from ctx — not a manufactured Background — so downstream stages
// observe the server's shutdown.
func (e *Engine) ServeClassifyCtx(ctx context.Context, conn *wire.Conn) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		msg, err := conn.Recv()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("core: serve classify recv: %w", err)
		}
		req, ok := msg.(*wire.ClassifyRequest)
		if !ok {
			return fmt.Errorf("core: expected classify request, got %T", msg)
		}
		start := time.Now()
		root := telemetry.DefaultTracer.StartRoot("darnet_classify_request")
		resp := e.answer(telemetry.ContextWithSpan(ctx, root), req)
		root.End()
		mRemoteRequests.Inc()
		if resp.Error != "" {
			mRemoteErrors.Inc()
		}
		hRemoteRequest.ObserveSince(start)
		if err := conn.Send(resp); err != nil {
			return fmt.Errorf("core: serve classify send: %w", err)
		}
	}
}

func (e *Engine) answer(ctx context.Context, req *wire.ClassifyRequest) *wire.ClassifyResponse {
	if err := req.Validate(); err != nil {
		return &wire.ClassifyResponse{Error: err.Error()}
	}
	if int(req.FrameW) != e.ImgW || int(req.FrameH) != e.ImgH {
		return &wire.ClassifyResponse{Error: fmt.Sprintf(
			"core: frame %dx%d does not match engine %dx%d", req.FrameW, req.FrameH, e.ImgW, e.ImgH)}
	}
	if int(req.FeatureDim) != imu.FeatureDim {
		return &wire.ClassifyResponse{Error: fmt.Sprintf(
			"core: window feature dim %d, want %d", req.FeatureDim, imu.FeatureDim)}
	}
	window, err := windowFromFeatures(req.Window, int(req.Steps))
	if err != nil {
		return &wire.ClassifyResponse{Error: err.Error()}
	}
	var res *Classification
	if level := collect.DistortionLevel(req.Distortion); level != collect.DistortNone {
		res, err = e.classifyDistorted(req.Frame, level, window)
	} else {
		res, err = e.ClassifyCtx(ctx, req.Frame, window)
	}
	if err != nil {
		return &wire.ClassifyResponse{Error: err.Error()}
	}
	return &wire.ClassifyResponse{
		Class: uint32(res.Class),
		Probs: append([]float64(nil), res.Probs...),
	}
}

// classifyDistorted fuses a privacy-distorted frame through the matching
// dCNN (Figure 3: the analytics engine "picks the appropriate classifier")
// with the IMU window through the usual RNN + Bayesian Network path.
func (e *Engine) classifyDistorted(frame []float64, level collect.DistortionLevel, window imu.Window) (*Classification, error) {
	if e.dcnn == nil {
		return nil, fmt.Errorf("core: no dCNN router attached for distortion level %v", level)
	}
	img := vision.MustNewImage(e.ImgW, e.ImgH)
	copy(img.Pix, frame)
	cnnProbs, err := e.dcnn.Classify(&privacy.TaggedFrame{Level: level, Image: img})
	if err != nil {
		return nil, err
	}
	rnnProbs, err := e.RNN.PredictProbs(e.IMUStats.Normalize(window))
	if err != nil {
		return nil, fmt.Errorf("core: rnn inference: %w", err)
	}
	post, err := e.BNWithRNN.Combine(cnnProbs, rnnProbs)
	if err != nil {
		return nil, fmt.Errorf("core: bn combine: %w", err)
	}
	return &Classification{Class: bayes.ArgMax(post), Probs: post, CNNProbs: cnnProbs, RNNProbs: rnnProbs}, nil
}

// SetDCNNRouter attaches the level-tagged dCNN classifiers the remote server
// routes distorted frames to (paper §4.3).
func (e *Engine) SetDCNNRouter(r *privacy.Router) { e.dcnn = r }

// windowFromFeatures rebuilds an imu.Window from flattened per-step feature
// rows (the inverse of imu.Window.Flatten).
func windowFromFeatures(values []float64, steps int) (imu.Window, error) {
	if steps <= 0 || len(values) != steps*imu.FeatureDim {
		return imu.Window{}, fmt.Errorf("core: window has %d values for %d steps", len(values), steps)
	}
	samples := make([]imu.Sample, steps)
	for t := 0; t < steps; t++ {
		row := values[t*imu.FeatureDim : (t+1)*imu.FeatureDim]
		var s imu.Sample
		copy(s.Accel[:], row[0:3])
		copy(s.Gyro[:], row[3:6])
		copy(s.Gravity[:], row[6:9])
		copy(s.Rotation[:], row[9:13])
		samples[t] = s
	}
	return imu.Window{Samples: samples}, nil
}

// RemoteClassify is the client side of the remote configuration: it ships
// one aligned (frame, window) observation to a server running ServeClassify
// and returns the fused classification.
func RemoteClassify(conn *wire.Conn, frame []float64, w, h int, distortion uint8, window imu.Window) (*Classification, error) {
	req := &wire.ClassifyRequest{
		FrameW:     uint32(w),
		FrameH:     uint32(h),
		Frame:      frame,
		Distortion: distortion,
		Steps:      uint32(len(window.Samples)),
		FeatureDim: imu.FeatureDim,
		Window:     window.Flatten(),
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if err := conn.Send(req); err != nil {
		return nil, fmt.Errorf("core: remote classify send: %w", err)
	}
	msg, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("core: remote classify recv: %w", err)
	}
	resp, ok := msg.(*wire.ClassifyResponse)
	if !ok {
		return nil, fmt.Errorf("core: expected classify response, got %T", msg)
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("core: remote classify: %s", resp.Error)
	}
	return &Classification{Class: int(resp.Class), Probs: resp.Probs}, nil
}

package core_test

import (
	"fmt"

	"darnet/internal/core"
)

// The alerter debounces per-window classifications; EvaluateAlerts scores a
// whole session at the episode level.
func ExampleEvaluateAlerts() {
	// Ground truth: normal, then a 3-window texting episode, then normal.
	truth := []int{0, 0, 2, 2, 2, 0, 0, 0}
	// The classifier misses the first episode window and blips once later.
	predicted := []int{0, 0, 0, 2, 2, 0, 2, 0}

	report, err := core.EvaluateAlerts(truth, predicted, 0, 2, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("episodes: %d, detected: %d, false alerts: %d, mean delay: %.0f windows\n",
		report.Episodes, report.Detected, report.FalseAlerts, report.MeanDetectionDelay)
	// Output: episodes: 1, detected: 1, false alerts: 0, mean delay: 2 windows
}

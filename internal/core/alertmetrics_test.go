package core

import (
	"math"
	"testing"
)

func TestEvaluateAlertsPerfectPredictions(t *testing.T) {
	// Session: N N D D D N N D D N  (two episodes).
	truth := []int{0, 0, 1, 1, 1, 0, 0, 2, 2, 0}
	report, err := EvaluateAlerts(truth, truth, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.Episodes != 2 {
		t.Fatalf("episodes = %d, want 2", report.Episodes)
	}
	if report.Detected != 2 {
		t.Fatalf("detected = %d, want 2", report.Detected)
	}
	if report.FalseAlerts != 0 {
		t.Fatalf("false alerts = %d", report.FalseAlerts)
	}
	// Trigger=2: each episode alerts on its second window (delay 1).
	if math.Abs(report.MeanDetectionDelay-1) > 1e-12 {
		t.Fatalf("mean delay = %g, want 1", report.MeanDetectionDelay)
	}
	if report.DetectionRate() != 1 {
		t.Fatalf("detection rate = %g", report.DetectionRate())
	}
}

func TestEvaluateAlertsMissedEpisode(t *testing.T) {
	truth := []int{0, 1, 1, 1, 0}
	pred := []int{0, 0, 0, 0, 0} // model never notices
	report, err := EvaluateAlerts(truth, pred, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.Episodes != 1 || report.Detected != 0 {
		t.Fatalf("report = %+v", report)
	}
	if report.DetectionRate() != 0 {
		t.Fatalf("detection rate = %g", report.DetectionRate())
	}
}

func TestEvaluateAlertsFalseAlert(t *testing.T) {
	truth := []int{0, 0, 0, 0, 0, 0}
	pred := []int{0, 1, 1, 0, 0, 0} // two misclassified windows raise a false alert
	report, err := EvaluateAlerts(truth, pred, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.Episodes != 0 {
		t.Fatalf("episodes = %d", report.Episodes)
	}
	if report.FalseAlerts != 1 {
		t.Fatalf("false alerts = %d, want 1", report.FalseAlerts)
	}
}

func TestEvaluateAlertsSingleBlipDoesNotFalseAlert(t *testing.T) {
	truth := make([]int, 8)
	pred := []int{0, 1, 0, 0, 1, 0, 0, 0} // isolated blips
	report, err := EvaluateAlerts(truth, pred, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.FalseAlerts != 0 {
		t.Fatalf("false alerts = %d, want 0 (hysteresis should absorb blips)", report.FalseAlerts)
	}
}

func TestEvaluateAlertsActiveAlertSpansEpisodes(t *testing.T) {
	// The alert raised in episode 1 is still active when episode 2 begins
	// (only one normal window between them, clear=2): episode 2 counts as
	// detected immediately.
	truth := []int{1, 1, 1, 0, 2, 2, 0, 0}
	pred := []int{1, 1, 1, 1, 2, 2, 0, 0}
	report, err := EvaluateAlerts(truth, pred, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.Episodes != 2 || report.Detected != 2 {
		t.Fatalf("report = %+v", report)
	}
}

func TestEvaluateAlertsValidation(t *testing.T) {
	if _, err := EvaluateAlerts([]int{0}, []int{0, 1}, 0, 2, 2); err == nil {
		t.Fatal("expected alignment error")
	}
	if _, err := EvaluateAlerts([]int{0}, []int{0}, 0, 0, 2); err == nil {
		t.Fatal("expected threshold error")
	}
}

func TestEvaluateAlertsTrailingEpisodeCounted(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 0, 1, 1}
	report, err := EvaluateAlerts(truth, pred, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.Episodes != 1 || report.Detected != 1 {
		t.Fatalf("trailing episode not scored: %+v", report)
	}
}

package core

import (
	"math"
	"math/rand"
	"net"
	"testing"

	"darnet/internal/collect"
	"darnet/internal/imu"
	"darnet/internal/privacy"
	"darnet/internal/wire"
)

func TestRemoteClassifyOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(40))
	train := tinyData(rng, 45, 16, 16, 3, 3)
	cfg := DefaultTrainConfig()
	cfg.CNNEpochs = 3
	cfg.RNNEpochs = 1
	cfg.RNNHidden = 4
	cfg.RNNLayers = 1
	cfg.SVMEpochs = 3
	eng, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- eng.ServeClassify(wire.NewConn(conn))
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := wire.NewConn(raw)

	// Remote and local inference must agree exactly.
	for i := 0; i < 3; i++ {
		local, err := eng.Classify(train.Frames.Row(i), train.Windows[i])
		if err != nil {
			t.Fatal(err)
		}
		remote, err := RemoteClassify(conn, train.Frames.Row(i), 16, 16, 0, train.Windows[i])
		if err != nil {
			t.Fatal(err)
		}
		if remote.Class != local.Class {
			t.Fatalf("sample %d: remote class %d vs local %d", i, remote.Class, local.Class)
		}
		for k := range local.Probs {
			if math.Abs(remote.Probs[k]-local.Probs[k]) > 1e-12 {
				t.Fatalf("sample %d: posterior differs remotely", i)
			}
		}
	}

	// A malformed request gets an error response without killing the stream.
	bad := &wire.ClassifyRequest{FrameW: 3, FrameH: 3, Frame: make([]float64, 9),
		Steps: uint32(imu.WindowSize), FeatureDim: imu.FeatureDim,
		Window: make([]float64, imu.WindowSize*imu.FeatureDim)}
	if err := conn.Send(bad); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := msg.(*wire.ClassifyResponse)
	if !ok || resp.Error == "" {
		t.Fatalf("expected error response, got %+v", msg)
	}
	// The stream still works afterwards.
	if _, err := RemoteClassify(conn, train.Frames.Row(0), 16, 16, 0, train.Windows[0]); err != nil {
		t.Fatalf("stream broken after bad request: %v", err)
	}

	raw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestWindowFromFeaturesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	samples := make([]imu.Sample, 5)
	for i := range samples {
		for j := 0; j < 3; j++ {
			samples[i].Accel[j] = rng.NormFloat64()
			samples[i].Gyro[j] = rng.NormFloat64()
			samples[i].Gravity[j] = rng.NormFloat64()
		}
		for j := 0; j < 4; j++ {
			samples[i].Rotation[j] = rng.NormFloat64()
		}
	}
	w := imu.Window{Samples: samples}
	back, err := windowFromFeatures(w.Flatten(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		a := samples[i].Features()
		b := back.Samples[i].Features()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("sample %d feature %d: %g vs %g", i, j, a[j], b[j])
			}
		}
	}
	if _, err := windowFromFeatures(make([]float64, 10), 5); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := windowFromFeatures(nil, 0); err == nil {
		t.Fatal("expected zero-steps error")
	}
}

func TestClassifyRequestValidate(t *testing.T) {
	good := &wire.ClassifyRequest{FrameW: 2, FrameH: 2, Frame: make([]float64, 4), Steps: 1, FeatureDim: 13, Window: make([]float64, 13)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &wire.ClassifyRequest{FrameW: 2, FrameH: 2, Frame: make([]float64, 3)}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected frame mismatch error")
	}
	bad2 := &wire.ClassifyRequest{FrameW: 1, FrameH: 1, Frame: make([]float64, 1), Steps: 2, FeatureDim: 13, Window: make([]float64, 13)}
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected window mismatch error")
	}
}

func TestRemoteClassifyDistortedRoutesThroughDCNN(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(50))
	train := tinyData(rng, 45, 16, 16, 3, 3)
	cfg := DefaultTrainConfig()
	cfg.CNNEpochs = 3
	cfg.RNNEpochs = 1
	cfg.RNNHidden = 4
	cfg.RNNLayers = 1
	cfg.SVMEpochs = 3
	eng, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- eng.ServeClassify(wire.NewConn(conn))
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := wire.NewConn(raw)

	// Without a router, distorted requests are rejected (but the stream
	// survives).
	if _, err := RemoteClassify(conn, train.Frames.Row(0), 16, 16, uint8(collect.DistortLow), train.Windows[0]); err == nil {
		t.Fatal("expected no-router error")
	}

	// Attach a router whose dCNN-L is simply the engine's own CNN (exactness
	// is not the point; routing is).
	router := privacy.NewRouter()
	router.Register(collect.DistortLow, eng.CNN)
	eng.SetDCNNRouter(router)

	res, err := RemoteClassify(conn, train.Frames.Row(0), 16, 16, uint8(collect.DistortLow), train.Windows[0])
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range res.Probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distorted-path posterior sums to %g", sum)
	}

	raw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

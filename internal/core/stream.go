package core

import (
	"darnet/internal/imu"
	"darnet/internal/rnn"
)

// FrameProbs runs only the CNN modality over one flattened frame, for
// streaming callers that manage their own modality cadence (frame-skipping
// reuses the previous result instead of calling this).
func (e *Engine) FrameProbs(frame []float64) ([]float64, error) {
	probs, err := e.cnnForward(frame)
	if err != nil {
		mClassifyErrors.Inc()
		return nil, err
	}
	return probs, nil
}

// Fuse combines already-computed per-modality distributions into a
// Classification via the Bayesian Network. Nil marks an absent modality and
// selects the matching degraded mode (uniform stand-in parent, discounted
// confidence); both nil is an error. This is the tail of ClassifyCtx exposed
// for the streaming pipeline, which computes the modalities incrementally.
func (e *Engine) Fuse(cnnProbs, rnnProbs []float64) (*Classification, error) {
	out, err := e.fuse(cnnProbs, rnnProbs)
	if err != nil {
		mClassifyErrors.Inc()
		return nil, err
	}
	return out, nil
}

// IMUStream feeds live IMU samples through the trained RNN incrementally:
// each sample is standardized with the engine's fitted stats and advances the
// rnn.Stream one step, so a completed window costs only the pooling and
// softmax head instead of a full recompute. Windows are tumbling, matching
// collect's assembler geometry, and the per-window output is bit-for-bit
// identical to the ClassifyCtx batch path.
type IMUStream struct {
	stats *imu.Stats
	rs    *rnn.Stream
	feat  []float64 // normalized-feature scratch
}

// NewIMUStream returns a stream over the paper's window geometry
// (imu.WindowSize samples per classification).
func (e *Engine) NewIMUStream() (*IMUStream, error) {
	rs, err := e.RNN.NewStream(imu.WindowSize)
	if err != nil {
		return nil, err
	}
	return &IMUStream{stats: e.IMUStats, rs: rs, feat: make([]float64, imu.FeatureDim)}, nil
}

// Push standardizes one sample and advances the stream, reporting whether a
// window just completed and Classify may be called.
func (s *IMUStream) Push(smp imu.Sample) (ready bool, err error) {
	for j, v := range smp.Features() {
		s.feat[j] = (v - s.stats.Mean[j]) / s.stats.Std[j]
	}
	return s.rs.Push(s.feat)
}

// Classify returns the RNN class distribution for the completed window and
// resets the stream for the next one.
func (s *IMUStream) Classify() ([]float64, error) { return s.rs.Classify() }

// Len returns the number of samples in the current partial window.
func (s *IMUStream) Len() int { return s.rs.Len() }

// Reset discards the partial window and recurrent state.
func (s *IMUStream) Reset() { s.rs.Reset() }

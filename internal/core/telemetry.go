package core

import "darnet/internal/telemetry"

// Analytics-engine metrics: fused-inference latency broken down by model
// stage, remote classify-service traffic, and alert-state transitions.
var (
	mClassifications = telemetry.NewCounter("darnet_core_classifications_total", "fused classifications served")
	mClassifyErrors  = telemetry.NewCounter("darnet_core_classify_errors_total", "classifications aborted by a model or validation error")
	hClassify        = telemetry.NewHistogram("darnet_core_classify_seconds", "end-to-end latency of one fused classification", nil)
	hCNNForward      = telemetry.NewHistogram("darnet_core_cnn_forward_seconds", "CNN forward pass over one frame", nil)
	hRNNForward      = telemetry.NewHistogram("darnet_core_rnn_forward_seconds", "RNN forward pass over one normalized window", nil)
	hBNCombine       = telemetry.NewHistogram("darnet_core_bn_combine_seconds", "Bayesian Network posterior fusion", nil)

	mRemoteRequests = telemetry.NewCounter("darnet_core_remote_requests_total", "classify requests answered by ServeClassify")
	mRemoteErrors   = telemetry.NewCounter("darnet_core_remote_errors_total", "classify requests answered with an error response")
	hRemoteRequest  = telemetry.NewHistogram("darnet_core_remote_request_seconds", "server-side handling of one classify request", nil)

	mDegraded = telemetry.NewCounter("darnet_core_degraded_classify_total", "classifications served in degraded single-modality mode because a modality was absent")

	mAlertsRaised  = telemetry.NewCounter("darnet_core_alerts_raised_total", "distracted-driving alerts raised")
	mAlertsCleared = telemetry.NewCounter("darnet_core_alerts_cleared_total", "alerts cleared after sustained normal driving")
	gAlertActive   = telemetry.NewGauge("darnet_core_alert_active", "1 while a distracted-driving alert is raised")
)

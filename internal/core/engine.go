package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"darnet/internal/bayes"
	"darnet/internal/imu"
	"darnet/internal/nn"
	"darnet/internal/privacy"
	"darnet/internal/rnn"
	"darnet/internal/svm"
	"darnet/internal/telemetry"
	"darnet/internal/tensor"
)

// Engine is the trained analytics engine: one model per modality plus the
// fitted Bayesian Network combiners.
type Engine struct {
	CNN      *nn.Sequential
	RNN      *rnn.Classifier
	SVM      *svm.Classifier
	IMUStats *imu.Stats

	// BNWithRNN and BNWithSVM are the fitted per-class Bayesian Network
	// combiners for the CNN+RNN and CNN+SVM ensembles.
	BNWithRNN *bayes.Combiner
	BNWithSVM *bayes.Combiner

	Classes    int
	IMUClasses int
	ClassMap   bayes.ClassMap
	ImgW, ImgH int

	// dcnn, when attached via SetDCNNRouter, serves the privacy path:
	// distortion-tagged frames route to the matching student model.
	dcnn *privacy.Router
}

// TrainConfig controls end-to-end engine training.
type TrainConfig struct {
	Seed      int64
	CNN       CNNConfig
	CNNEpochs int
	CNNLR     float64
	RNNHidden int // per-direction LSTM width (paper: 64)
	RNNLayers int // stacked BiLSTM layers (paper: 2)
	RNNEpochs int
	RNNLR     float64
	SVMEpochs int
	SVMLR     float64
	BatchSize int
	Smoothing float64 // Laplace smoothing for the BN CPTs
	// Progress, when non-nil, receives coarse progress events.
	Progress func(stage string, epoch int, loss float64)
}

// DefaultTrainConfig returns the calibrated defaults used by the paper
// reproduction benches.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Seed:      42,
		CNN:       DefaultCNNConfig(),
		CNNEpochs: 16,
		CNNLR:     0.002,
		RNNHidden: 64,
		RNNLayers: 2,
		RNNEpochs: 12,
		RNNLR:     0.003,
		SVMEpochs: 25,
		SVMLR:     0.01,
		BatchSize: 32,
		Smoothing: 1,
	}
}

func (c *TrainConfig) fillDefaults() {
	d := DefaultTrainConfig()
	if c.CNNEpochs <= 0 {
		c.CNNEpochs = d.CNNEpochs
	}
	if c.CNNLR <= 0 {
		c.CNNLR = d.CNNLR
	}
	if c.RNNHidden <= 0 {
		c.RNNHidden = d.RNNHidden
	}
	if c.RNNLayers <= 0 {
		c.RNNLayers = d.RNNLayers
	}
	if c.RNNEpochs <= 0 {
		c.RNNEpochs = d.RNNEpochs
	}
	if c.RNNLR <= 0 {
		c.RNNLR = d.RNNLR
	}
	if c.SVMEpochs <= 0 {
		c.SVMEpochs = d.SVMEpochs
	}
	if c.SVMLR <= 0 {
		c.SVMLR = d.SVMLR
	}
	if c.BatchSize <= 0 {
		c.BatchSize = d.BatchSize
	}
	if c.Smoothing <= 0 {
		c.Smoothing = d.Smoothing
	}
	if c.CNN.StemChannels <= 0 {
		c.CNN = d.CNN
	}
}

func (c *TrainConfig) progress(stage string, epoch int, loss float64) {
	if c.Progress != nil {
		c.Progress(stage, epoch, loss)
	}
}

// Train trains all modality models on train data and fits the Bayesian
// Network combiners from the models' predictions on the training set — the
// "true-positive observations from the training data" of paper §4.2.
func Train(train *Data, cfg TrainConfig) (*Engine, error) {
	if err := train.Validate(); err != nil {
		return nil, err
	}
	if len(train.Windows) == 0 {
		return nil, fmt.Errorf("core: engine training requires the IMU stream")
	}
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	eng := &Engine{
		Classes:    train.Classes,
		IMUClasses: train.IMUClasses,
		ClassMap:   append(bayes.ClassMap(nil), intsToClassMap(train.ClassMap)...),
		ImgW:       train.ImgW,
		ImgH:       train.ImgH,
	}

	// --- Frame CNN ----------------------------------------------------------
	cnn, err := BuildFrameCNN(rng, train.ImgW, train.ImgH, train.Classes, cfg.CNN)
	if err != nil {
		return nil, err
	}
	opt := nn.NewAdam(cfg.CNNLR)
	opt.WeightDecay = 1e-4
	_, err = nn.TrainClassifier(cnn, opt, rng, train.Frames, train.Labels, nn.TrainConfig{
		Epochs: cfg.CNNEpochs, BatchSize: cfg.BatchSize, ClipNorm: 5,
		OnEpoch: func(e int, l float64) bool { cfg.progress("cnn", e, l); return true },
	})
	if err != nil {
		return nil, fmt.Errorf("core: train cnn: %w", err)
	}
	eng.CNN = cnn

	// --- IMU preprocessing ---------------------------------------------------
	stats, err := imu.FitStats(train.Windows)
	if err != nil {
		return nil, fmt.Errorf("core: fit imu stats: %w", err)
	}
	eng.IMUStats = stats
	seqs := make([]*tensor.Tensor, len(train.Windows))
	flat := tensor.New(len(train.Windows), len(train.Windows[0].Samples)*imu.FeatureDim)
	for i, w := range train.Windows {
		seqs[i] = stats.Normalize(w)
		copy(flat.Row(i), stats.NormalizeFlat(w))
	}

	// --- IMU RNN -------------------------------------------------------------
	rnnCls, err := rnn.NewClassifier("imurnn", rng, rnn.Config{
		Input: imu.FeatureDim, Hidden: cfg.RNNHidden, Layers: cfg.RNNLayers, Classes: train.IMUClasses,
	})
	if err != nil {
		return nil, err
	}
	_, err = rnnCls.Train(nn.NewAdam(cfg.RNNLR), rng, seqs, train.IMULabels, rnn.TrainConfig{
		Epochs: cfg.RNNEpochs, BatchSize: 16, ClipNorm: 5,
		OnEpoch: func(e int, l float64) bool { cfg.progress("rnn", e, l); return true },
	})
	if err != nil {
		return nil, fmt.Errorf("core: train rnn: %w", err)
	}
	eng.RNN = rnnCls

	// --- IMU SVM baseline ----------------------------------------------------
	svmCls, err := svm.Train(rng, flat, train.IMULabels, train.IMUClasses, svm.TrainConfig{
		Epochs: cfg.SVMEpochs, LR: cfg.SVMLR, Lambda: 1e-4,
	})
	if err != nil {
		return nil, fmt.Errorf("core: train svm: %w", err)
	}
	eng.SVM = svmCls
	cfg.progress("svm", 0, 0)

	// --- Bayesian Network combiners ------------------------------------------
	cnnPred, err := nn.PredictClasses(cnn, train.Frames, 64)
	if err != nil {
		return nil, fmt.Errorf("core: cnn train predictions: %w", err)
	}
	rnnPred := make([]int, len(seqs))
	svmPred := make([]int, len(seqs))
	for i, s := range seqs {
		p, err := rnnCls.Predict(s)
		if err != nil {
			return nil, fmt.Errorf("core: rnn train prediction %d: %w", i, err)
		}
		rnnPred[i] = p
		q, err := svmCls.Predict(flat.Row(i))
		if err != nil {
			return nil, fmt.Errorf("core: svm train prediction %d: %w", i, err)
		}
		svmPred[i] = q
	}
	bnRNN, err := bayes.NewCombiner(train.Classes, train.Classes, train.IMUClasses)
	if err != nil {
		return nil, err
	}
	if err := bnRNN.Fit(train.Labels, cnnPred, rnnPred, cfg.Smoothing); err != nil {
		return nil, fmt.Errorf("core: fit CNN+RNN combiner: %w", err)
	}
	eng.BNWithRNN = bnRNN

	bnSVM, err := bayes.NewCombiner(train.Classes, train.Classes, train.IMUClasses)
	if err != nil {
		return nil, err
	}
	if err := bnSVM.Fit(train.Labels, cnnPred, svmPred, cfg.Smoothing); err != nil {
		return nil, fmt.Errorf("core: fit CNN+SVM combiner: %w", err)
	}
	eng.BNWithSVM = bnSVM
	cfg.progress("combiner", 0, 0)
	return eng, nil
}

func intsToClassMap(m []int) bayes.ClassMap {
	out := make(bayes.ClassMap, len(m))
	copy(out, m)
	return out
}

// ClassifyMode names which modalities backed a classification.
type ClassifyMode int

// Classification modes: fused is the healthy CNN+RNN ensemble; the single-
// modality modes are the degraded fallbacks used when the other modality's
// stream is absent (partitioned agent, stale window, missing frame).
const (
	ModeFused ClassifyMode = iota
	ModeCNNOnly
	ModeRNNOnly
)

// String implements fmt.Stringer.
func (m ClassifyMode) String() string {
	switch m {
	case ModeFused:
		return "fused"
	case ModeCNNOnly:
		return "cnn-only"
	case ModeRNNOnly:
		return "rnn-only"
	default:
		return fmt.Sprintf("ClassifyMode(%d)", int(m))
	}
}

// DegradedConfidenceDiscount is the factor applied to the posterior-peak
// confidence of a single-modality classification: with one parent of the
// Bayesian Network replaced by an uninformative uniform, the decision rests
// on half the evidence and downstream alerting should trust it accordingly.
const DegradedConfidenceDiscount = 0.5

// Classification is one inference over the available modalities.
type Classification struct {
	// Class is the ensemble (CNN+RNN via BN) decision.
	Class int
	// Probs is the ensemble posterior over all classes.
	Probs []float64
	// CNNProbs and RNNProbs are the per-modality distributions that were
	// combined (the two parent nodes of Figure 1). In a degraded mode the
	// absent modality's slice is nil and the combiner saw a uniform
	// distribution in its place.
	CNNProbs []float64
	RNNProbs []float64
	// Mode records which modalities produced this result.
	Mode ClassifyMode
	// Confidence is the posterior peak probability, discounted by
	// DegradedConfidenceDiscount when Mode is not ModeFused.
	Confidence float64
}

// Degraded reports whether the classification fell back to one modality.
func (c *Classification) Degraded() bool { return c.Mode != ModeFused }

// uniform returns the uninformative distribution over n outcomes — the
// stand-in parent for an absent modality in degraded classification.
func uniform(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}

// Classify runs the full DarNet inference for one aligned (frame, window)
// observation: CNN on the frame, RNN on the normalized window, BN fusion.
func (e *Engine) Classify(frame []float64, window imu.Window) (*Classification, error) {
	return e.ClassifyCtx(context.Background(), frame, window)
}

// ClassifyCtx is Classify with span tracing: each model stage (CNN forward,
// RNN forward, BN fusion) becomes a child of the span carried by ctx (or of
// a fresh root when ctx carries none), and stage latencies feed the
// darnet_core_* histograms.
//
// Graceful degradation: an empty frame or an empty window selects the
// corresponding single-modality mode instead of failing — the absent parent
// of the Bayesian Network is replaced by a uniform distribution, so the
// posterior reduces to the surviving model's evidence reweighted by the
// class priors, and the result carries a discounted Confidence plus a
// non-fused Mode (and bumps darnet_core_degraded_classify_total). Only when
// both modalities are absent is there nothing to classify and an error is
// returned.
func (e *Engine) ClassifyCtx(ctx context.Context, frame []float64, window imu.Window) (*Classification, error) {
	start := time.Now()
	_, span := telemetry.DefaultTracer.StartSpan(ctx, "darnet_stage_classify")
	defer span.End()
	haveFrame := len(frame) > 0
	haveWindow := len(window.Samples) > 0
	if !haveFrame && !haveWindow {
		mClassifyErrors.Inc()
		return nil, fmt.Errorf("core: both modalities absent, nothing to classify")
	}
	if haveFrame && len(frame) != e.ImgW*e.ImgH {
		mClassifyErrors.Inc()
		return nil, fmt.Errorf("core: frame has %d pixels, want %d", len(frame), e.ImgW*e.ImgH)
	}

	var cnnProbs []float64
	if haveFrame {
		cnnSp := span.StartChild("darnet_stage_cnn_forward")
		probs, err := e.cnnForward(frame)
		cnnSp.End()
		if err != nil {
			mClassifyErrors.Inc()
			return nil, err
		}
		cnnProbs = probs
	}

	var rnnProbs []float64
	if haveWindow {
		rnnSp := span.StartChild("darnet_stage_rnn_forward")
		rnnStart := time.Now()
		probs, err := e.RNN.PredictProbs(e.IMUStats.Normalize(window))
		rnnSp.End()
		if err != nil {
			mClassifyErrors.Inc()
			return nil, fmt.Errorf("core: rnn inference: %w", err)
		}
		hRNNForward.ObserveSince(rnnStart)
		rnnProbs = probs
	}

	bnSp := span.StartChild("darnet_stage_bn_combine")
	out, err := e.fuse(cnnProbs, rnnProbs)
	bnSp.End()
	if err != nil {
		mClassifyErrors.Inc()
		return nil, err
	}
	hClassify.ObserveSince(start)
	return out, nil
}

// cnnForward runs the frame CNN over one flattened frame and returns the
// class distribution, feeding the darnet_core_cnn_forward_seconds histogram.
func (e *Engine) cnnForward(frame []float64) ([]float64, error) {
	if len(frame) != e.ImgW*e.ImgH {
		return nil, fmt.Errorf("core: frame has %d pixels, want %d", len(frame), e.ImgW*e.ImgH)
	}
	x, err := tensor.FromSlice(frame, 1, len(frame))
	if err != nil {
		return nil, err
	}
	start := time.Now()
	probs, err := nn.PredictProbs(e.CNN, x, 1)
	if err != nil {
		return nil, fmt.Errorf("core: cnn inference: %w", err)
	}
	hCNNForward.ObserveSince(start)
	return append([]float64(nil), probs.Row(0)...), nil
}

// fuse combines the per-modality distributions through the Bayesian Network.
// A nil slice marks an absent modality: its parent node is replaced by a
// uniform distribution and the result carries the corresponding degraded mode
// and discounted confidence. Both absent is an error.
func (e *Engine) fuse(cnnProbs, rnnProbs []float64) (*Classification, error) {
	if cnnProbs == nil && rnnProbs == nil {
		return nil, fmt.Errorf("core: both modalities absent, nothing to classify")
	}
	out := &Classification{Mode: ModeFused, CNNProbs: cnnProbs, RNNProbs: rnnProbs}
	pA := cnnProbs
	if pA == nil {
		pA = uniform(e.Classes)
		out.Mode = ModeRNNOnly
	}
	pB := rnnProbs
	if pB == nil {
		pB = uniform(e.IMUClasses)
		out.Mode = ModeCNNOnly
	}
	bnStart := time.Now()
	post, err := e.BNWithRNN.Combine(pA, pB)
	if err != nil {
		return nil, fmt.Errorf("core: bn combine: %w", err)
	}
	hBNCombine.ObserveSince(bnStart)
	out.Class = bayes.ArgMax(post)
	out.Probs = post
	out.Confidence = post[out.Class]
	if out.Degraded() {
		out.Confidence *= DegradedConfidenceDiscount
		mDegraded.Inc()
	}
	mClassifications.Inc()
	return out, nil
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"darnet/internal/imu"
	"darnet/internal/nn"
	"darnet/internal/tensor"
)

// tinyData builds a small aligned multi-modal dataset with a learnable
// structure: frames carry a class-dependent bright square, windows carry a
// class-dependent accelerometer offset in the 3-class IMU space.
func tinyData(rng *rand.Rand, n, w, h, classes, imuClasses int) *Data {
	frames := tensor.New(n, w*h)
	labels := make([]int, n)
	imuLabels := make([]int, n)
	windows := make([]imu.Window, n)
	classMap := make([]int, classes)
	for c := range classMap {
		classMap[c] = c % imuClasses
	}
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		imuLabels[i] = classMap[c]
		row := frames.Row(i)
		for j := range row {
			row[j] = rng.Float64() * 0.1
		}
		// Class-dependent bright column block, 3 pixels wide.
		x0 := (c * w) / classes
		for y := 0; y < h; y++ {
			for dx := 0; dx < 3 && x0+dx < w; dx++ {
				row[y*w+x0+dx] = 0.9
			}
		}
		samples := make([]imu.Sample, imu.WindowSize)
		for t := range samples {
			samples[t].TimestampMillis = int64(t * 250)
			samples[t].Accel[0] = float64(imuLabels[i])*3 + rng.NormFloat64()*0.2
			samples[t].Gravity[1] = 9.8
			samples[t].Rotation[3] = 1
		}
		windows[i] = imu.Window{Samples: samples}
	}
	return &Data{
		Frames: frames, Windows: windows, Labels: labels, IMULabels: imuLabels,
		ImgW: w, ImgH: h, Classes: classes, IMUClasses: imuClasses, ClassMap: classMap,
	}
}

func TestDataValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	good := tinyData(rng, 12, 8, 8, 4, 3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid data rejected: %v", err)
	}

	bad := tinyData(rng, 12, 8, 8, 4, 3)
	bad.Labels = bad.Labels[:5]
	if err := bad.Validate(); err == nil {
		t.Fatal("expected label-count error")
	}

	bad = tinyData(rng, 12, 8, 8, 4, 3)
	bad.ImgW = 7
	if err := bad.Validate(); err == nil {
		t.Fatal("expected frame-width error")
	}

	bad = tinyData(rng, 12, 8, 8, 4, 3)
	bad.Windows = bad.Windows[:3]
	if err := bad.Validate(); err == nil {
		t.Fatal("expected IMU misalignment error")
	}

	bad = tinyData(rng, 12, 8, 8, 4, 3)
	bad.ClassMap = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("expected class-map error")
	}
}

func TestBuildFrameCNNShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net, err := BuildFrameCNN(rng, 16, 16, 5, DefaultCNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := net.OutFeatures(16 * 16)
	if err != nil {
		t.Fatal(err)
	}
	if out != 5 {
		t.Fatalf("CNN OutFeatures = %d, want 5", out)
	}
	if _, err := BuildFrameCNN(rng, 4, 4, 5, DefaultCNNConfig()); err == nil {
		t.Fatal("expected min-size error")
	}
	if _, err := BuildFrameCNN(rng, 16, 16, 1, DefaultCNNConfig()); err == nil {
		t.Fatal("expected class-count error")
	}
}

func TestBuildPlainCNNShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := BuildPlainCNN(rng, 16, 16, 4, DefaultCNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := net.OutFeatures(16 * 16)
	if err != nil {
		t.Fatal(err)
	}
	if out != 4 {
		t.Fatalf("plain CNN OutFeatures = %d, want 4", out)
	}
	if _, err := BuildPlainCNN(rng, 2, 2, 4, DefaultCNNConfig()); err == nil {
		t.Fatal("expected min-size error")
	}
}

func TestTrainAndEvaluateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(4))
	train := tinyData(rng, 90, 16, 16, 3, 3)
	test := tinyData(rng, 30, 16, 16, 3, 3)

	cfg := DefaultTrainConfig()
	cfg.CNNEpochs = 15
	cfg.RNNEpochs = 4
	cfg.RNNHidden = 8
	cfg.RNNLayers = 1
	cfg.SVMEpochs = 10
	var stages []string
	cfg.Progress = func(stage string, epoch int, loss float64) {
		if len(stages) == 0 || stages[len(stages)-1] != stage {
			stages = append(stages, stage)
		}
	}
	eng, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantStages := []string{"cnn", "rnn", "svm", "combiner"}
	if len(stages) != len(wantStages) {
		t.Fatalf("stages = %v", stages)
	}
	for i, s := range wantStages {
		if stages[i] != s {
			t.Fatalf("stages = %v, want %v", stages, wantStages)
		}
	}

	ev, err := eng.Evaluate(test, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	// The tiny task is fully learnable by every modality.
	if ev.CNN < 0.8 {
		t.Fatalf("CNN accuracy = %g on trivially separable frames", ev.CNN)
	}
	if ev.RNNOnly < 0.8 || ev.SVMOnly < 0.8 {
		t.Fatalf("IMU accuracies = %g / %g on trivially separable windows", ev.RNNOnly, ev.SVMOnly)
	}
	if ev.CNNRNN < ev.CNN-0.1 {
		t.Fatalf("ensemble (%g) collapsed below CNN (%g)", ev.CNNRNN, ev.CNN)
	}
	if ev.ConfusionCNNRNN.Total() != test.Len() {
		t.Fatalf("confusion total = %d", ev.ConfusionCNNRNN.Total())
	}
	if ev.CNNECE < 0 || ev.CNNECE > 1 || ev.FusedECE < 0 || ev.FusedECE > 1 {
		t.Fatalf("calibration errors out of range: %g / %g", ev.CNNECE, ev.FusedECE)
	}

	// Classify: fused posterior is a distribution over full classes.
	res, err := eng.Classify(test.Frames.Row(0), test.Windows[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probs) != 3 || len(res.RNNProbs) != 3 || len(res.CNNProbs) != 3 {
		t.Fatalf("classification shapes wrong: %+v", res)
	}
	sum := 0.0
	for _, p := range res.Probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posterior sums to %g", sum)
	}
	if res.Class != test.Labels[0] {
		t.Logf("note: fused class %d != label %d (allowed but unexpected on separable data)", res.Class, test.Labels[0])
	}

	if _, err := eng.Classify(make([]float64, 5), test.Windows[0]); err == nil {
		t.Fatal("expected frame-size error")
	}
}

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := tinyData(rng, 12, 8, 8, 3, 3)
	d.Windows = nil
	d.IMULabels = nil
	d.ClassMap = nil
	if _, err := Train(d, DefaultTrainConfig()); err == nil {
		t.Fatal("expected missing-IMU error")
	}
}

func TestEvaluateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	train := tinyData(rng, 30, 8, 8, 3, 3)
	cfg := DefaultTrainConfig()
	cfg.CNNEpochs = 1
	cfg.RNNEpochs = 1
	cfg.RNNHidden = 4
	cfg.RNNLayers = 1
	cfg.SVMEpochs = 2
	eng, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	test := tinyData(rng, 9, 8, 8, 3, 3)
	if _, err := eng.Evaluate(test, []string{"a", "b"}); err == nil {
		t.Fatal("expected class-name count error")
	}
	imageOnly := tinyData(rng, 9, 8, 8, 3, 3)
	imageOnly.Windows = nil
	imageOnly.IMULabels = nil
	imageOnly.ClassMap = nil
	if _, err := eng.Evaluate(imageOnly, []string{"a", "b", "c"}); err == nil {
		t.Fatal("expected missing-IMU error")
	}
}

func TestEvaluateCNNOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := nn.NewSequential("toy", nn.NewDense("fc", rng, 4, 2))
	x := tensor.MustFromSlice([]float64{
		1, 0, 0, 0,
		0, 0, 0, 1,
	}, 2, 4)
	acc, err := EvaluateCNNOnly(net, x, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy = %g", acc)
	}
}

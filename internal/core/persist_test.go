package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestEngineSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	train := tinyData(rng, 36, 16, 16, 3, 3)
	cfg := DefaultTrainConfig()
	cfg.CNNEpochs = 2
	cfg.RNNEpochs = 1
	cfg.RNNHidden = 4
	cfg.RNNLayers = 1
	cfg.SVMEpochs = 3
	eng, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := eng.Save(&buf, cfg.CNN, cfg.RNNHidden, cfg.RNNLayers); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Classes != eng.Classes || loaded.ImgW != eng.ImgW || loaded.IMUClasses != eng.IMUClasses {
		t.Fatalf("metadata mismatch: %+v", loaded)
	}

	// The loaded engine must produce identical inferences.
	for i := 0; i < 5; i++ {
		a, err := eng.Classify(train.Frames.Row(i), train.Windows[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Classify(train.Frames.Row(i), train.Windows[i])
		if err != nil {
			t.Fatal(err)
		}
		if a.Class != b.Class {
			t.Fatalf("sample %d: class %d vs %d after round trip", i, a.Class, b.Class)
		}
		for j := range a.Probs {
			if math.Abs(a.Probs[j]-b.Probs[j]) > 1e-12 {
				t.Fatalf("sample %d: posterior differs after round trip", i)
			}
		}
	}
}

func TestLoadEngineRejectsGarbage(t *testing.T) {
	if _, err := LoadEngine(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("expected decode error")
	}
}

package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"darnet/internal/bayes"
	"darnet/internal/imu"
	"darnet/internal/nn"
	"darnet/internal/rnn"
	"darnet/internal/svm"
)

// engineBlob is the gob wire form of a trained engine.
type engineBlob struct {
	Classes    int
	IMUClasses int
	ClassMap   []int
	ImgW, ImgH int

	CNNCfg    CNNConfig
	CNNParams []byte

	RNNHidden int
	RNNLayers int
	RNNParams []byte

	SVMBlob   []byte
	BNRNNBlob []byte
	BNSVMBlob []byte

	IMUMean [imu.FeatureDim]float64
	IMUStd  [imu.FeatureDim]float64
}

// Save writes a complete snapshot of the trained engine: all model weights,
// the fitted CPTs, and the IMU normalization statistics.
func (e *Engine) Save(w io.Writer, cnnCfg CNNConfig, rnnHidden, rnnLayers int) error {
	blob := engineBlob{
		Classes:    e.Classes,
		IMUClasses: e.IMUClasses,
		ClassMap:   append([]int(nil), e.ClassMap...),
		ImgW:       e.ImgW,
		ImgH:       e.ImgH,
		CNNCfg:     cnnCfg,
		RNNHidden:  rnnHidden,
		RNNLayers:  rnnLayers,
		IMUMean:    e.IMUStats.Mean,
		IMUStd:     e.IMUStats.Std,
	}
	var buf bytes.Buffer
	if err := nn.SaveParams(&buf, append(e.CNN.Params(), e.CNN.StateParams()...)); err != nil {
		return fmt.Errorf("core: save cnn: %w", err)
	}
	blob.CNNParams = append([]byte(nil), buf.Bytes()...)

	buf.Reset()
	if err := nn.SaveParams(&buf, e.RNN.Params()); err != nil {
		return fmt.Errorf("core: save rnn: %w", err)
	}
	blob.RNNParams = append([]byte(nil), buf.Bytes()...)

	var err error
	if blob.SVMBlob, err = e.SVM.MarshalBinary(); err != nil {
		return fmt.Errorf("core: save svm: %w", err)
	}
	if blob.BNRNNBlob, err = e.BNWithRNN.MarshalBinary(); err != nil {
		return fmt.Errorf("core: save bn(rnn): %w", err)
	}
	if blob.BNSVMBlob, err = e.BNWithSVM.MarshalBinary(); err != nil {
		return fmt.Errorf("core: save bn(svm): %w", err)
	}
	if err := gob.NewEncoder(w).Encode(blob); err != nil {
		return fmt.Errorf("core: encode engine: %w", err)
	}
	return nil
}

// LoadEngine reconstructs a trained engine from a snapshot written by Save.
func LoadEngine(r io.Reader) (*Engine, error) {
	var blob engineBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("core: decode engine: %w", err)
	}
	// The rng only seeds initial weights, which the snapshot immediately
	// overwrites.
	rng := rand.New(rand.NewSource(0))

	cnn, err := BuildFrameCNN(rng, blob.ImgW, blob.ImgH, blob.Classes, blob.CNNCfg)
	if err != nil {
		return nil, fmt.Errorf("core: rebuild cnn: %w", err)
	}
	if err := nn.LoadParams(bytes.NewReader(blob.CNNParams), append(cnn.Params(), cnn.StateParams()...)); err != nil {
		return nil, fmt.Errorf("core: load cnn: %w", err)
	}

	rnnCls, err := rnn.NewClassifier("imurnn", rng, rnn.Config{
		Input: imu.FeatureDim, Hidden: blob.RNNHidden, Layers: blob.RNNLayers, Classes: blob.IMUClasses,
	})
	if err != nil {
		return nil, fmt.Errorf("core: rebuild rnn: %w", err)
	}
	if err := nn.LoadParams(bytes.NewReader(blob.RNNParams), rnnCls.Params()); err != nil {
		return nil, fmt.Errorf("core: load rnn: %w", err)
	}

	svmCls := &svm.Classifier{}
	if err := svmCls.UnmarshalBinary(blob.SVMBlob); err != nil {
		return nil, fmt.Errorf("core: load svm: %w", err)
	}
	bnRNN := &bayes.Combiner{}
	if err := bnRNN.UnmarshalBinary(blob.BNRNNBlob); err != nil {
		return nil, fmt.Errorf("core: load bn(rnn): %w", err)
	}
	bnSVM := &bayes.Combiner{}
	if err := bnSVM.UnmarshalBinary(blob.BNSVMBlob); err != nil {
		return nil, fmt.Errorf("core: load bn(svm): %w", err)
	}

	return &Engine{
		CNN:        cnn,
		RNN:        rnnCls,
		SVM:        svmCls,
		IMUStats:   &imu.Stats{Mean: blob.IMUMean, Std: blob.IMUStd},
		BNWithRNN:  bnRNN,
		BNWithSVM:  bnSVM,
		Classes:    blob.Classes,
		IMUClasses: blob.IMUClasses,
		ClassMap:   append(bayes.ClassMap(nil), intsToClassMap(blob.ClassMap)...),
		ImgW:       blob.ImgW,
		ImgH:       blob.ImgH,
	}, nil
}

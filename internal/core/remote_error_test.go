package core

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"

	"darnet/internal/imu"
	"darnet/internal/wire"
)

// serveClassifyOn runs ServeClassify over one end of a pipe and reports its
// result. The zero Engine is enough: every case here fails in the protocol
// layer before any model is touched.
func serveClassifyOn(conn net.Conn) chan error {
	done := make(chan error, 1)
	go func() {
		done <- (&Engine{}).ServeClassify(wire.NewConn(conn))
	}()
	return done
}

// rawFrame writes a frame header claiming size payload bytes followed by
// len(body) actual bytes.
func rawFrame(t *testing.T, w io.Writer, size uint32, body []byte) {
	t.Helper()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], size)
	if _, err := w.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServeClassifyTruncatedFrame(t *testing.T) {
	client, server := net.Pipe()
	done := serveClassifyOn(server)

	// Header promises 100 bytes; the connection dies after 10.
	rawFrame(t, client, 100, make([]byte, 10))
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	err := <-done
	if err == nil {
		t.Fatal("ServeClassify accepted a truncated frame")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame error = %v, want io.ErrUnexpectedEOF in the chain", err)
	}
}

func TestServeClassifyOversizedPayload(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	done := serveClassifyOn(server)

	rawFrame(t, client, wire.MaxFrameSize+1, nil)

	err := <-done
	if err == nil {
		t.Fatal("ServeClassify accepted an oversized frame")
	}
	if !errors.Is(err, wire.ErrFrameTooLarge) {
		t.Fatalf("oversized frame error = %v, want wire.ErrFrameTooLarge in the chain", err)
	}
}

func TestServeClassifyWrongMessageType(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	done := serveClassifyOn(server)

	go func() {
		// Ignore the send error: the server may close the pipe first.
		_ = wire.NewConn(client).Send(&wire.Hello{AgentID: "x", Modality: "imu"})
	}()

	err := <-done
	if err == nil {
		t.Fatal("ServeClassify accepted a non-classify message")
	}
}

func TestRemoteClassifyServerGone(t *testing.T) {
	client, server := net.Pipe()
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	window := imu.Window{Samples: make([]imu.Sample, 1)}
	_, err := RemoteClassify(wire.NewConn(client), make([]float64, 4), 2, 2, 0, window)
	if err == nil {
		t.Fatal("RemoteClassify succeeded against a closed server")
	}
}

// TestRemoteClassifyServerDisconnectsMidExchange covers the server vanishing
// after accepting the request but before answering.
func TestRemoteClassifyServerDisconnectsMidExchange(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	go func() {
		// Swallow exactly one inbound frame, then hang up without replying.
		_, _ = wire.NewConn(server).Recv()
		_ = server.Close()
	}()

	window := imu.Window{Samples: make([]imu.Sample, 1)}
	_, err := RemoteClassify(wire.NewConn(client), make([]float64, 4), 2, 2, 0, window)
	if err == nil {
		t.Fatal("RemoteClassify succeeded with no response")
	}
}

package core

import "fmt"

// AlertReport quantifies the user-facing behaviour the paper's §5.2
// discussion raises ("a high false positive rate for distracted driving
// would diminish the user experience"): instead of per-window accuracy, it
// scores the alerter's *episode-level* behaviour on a session — how many
// true distraction episodes were alerted, how fast, and how many alerts
// fired during genuinely normal driving.
type AlertReport struct {
	// Episodes is the number of ground-truth distraction episodes (maximal
	// runs of consecutive non-normal windows).
	Episodes int
	// Detected is the number of episodes during which an alert was raised.
	Detected int
	// FalseAlerts counts alerts raised while the ground truth was normal.
	FalseAlerts int
	// MeanDetectionDelay is the mean number of windows between an episode's
	// onset and its alert, over detected episodes (0 when none detected).
	MeanDetectionDelay float64
}

// DetectionRate returns Detected/Episodes (0 when there are no episodes).
func (r AlertReport) DetectionRate() float64 {
	if r.Episodes == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Episodes)
}

// EvaluateAlerts replays predicted window classes through an alerter and
// scores the resulting alert stream against the ground truth. trueLabels and
// predicted must be aligned per window; normalClass identifies non-distracted
// windows in both.
func EvaluateAlerts(trueLabels, predicted []int, normalClass, trigger, clear int) (AlertReport, error) {
	if len(trueLabels) != len(predicted) {
		return AlertReport{}, fmt.Errorf("core: %d true labels for %d predictions", len(trueLabels), len(predicted))
	}
	alerter, err := NewAlerter(normalClass, trigger, clear)
	if err != nil {
		return AlertReport{}, err
	}

	var report AlertReport
	inEpisode := false
	episodeStart := 0
	episodeDetected := false
	var delaySum int

	endEpisode := func() {
		if !inEpisode {
			return
		}
		report.Episodes++
		if episodeDetected {
			report.Detected++
		}
		inEpisode = false
		episodeDetected = false
	}

	for i := range trueLabels {
		distractedTruth := trueLabels[i] != normalClass
		if distractedTruth && !inEpisode {
			inEpisode = true
			episodeStart = i
		}
		if !distractedTruth {
			endEpisode()
		}

		ev := alerter.Observe(predicted[i])
		if ev == AlertRaised {
			if inEpisode {
				if !episodeDetected {
					episodeDetected = true
					delaySum += i - episodeStart
				}
			} else {
				report.FalseAlerts++
			}
		}
		// An alert that is already active when an episode begins counts as an
		// immediate detection.
		if inEpisode && !episodeDetected && alerter.Active() {
			episodeDetected = true
			delaySum += i - episodeStart
		}
	}
	endEpisode()

	if report.Detected > 0 {
		report.MeanDetectionDelay = float64(delaySum) / float64(report.Detected)
	}
	return report, nil
}

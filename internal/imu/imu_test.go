package imu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSample(rng *rand.Rand, ts int64) Sample {
	var s Sample
	s.TimestampMillis = ts
	for i := 0; i < 3; i++ {
		s.Accel[i] = rng.NormFloat64()
		s.Gyro[i] = rng.NormFloat64()
		s.Gravity[i] = rng.NormFloat64()
	}
	for i := 0; i < 4; i++ {
		s.Rotation[i] = rng.NormFloat64()
	}
	return s
}

func TestFeaturesLayout(t *testing.T) {
	s := Sample{
		Accel:    [3]float64{1, 2, 3},
		Gyro:     [3]float64{4, 5, 6},
		Gravity:  [3]float64{7, 8, 9},
		Rotation: [4]float64{10, 11, 12, 13},
	}
	f := s.Features()
	if len(f) != FeatureDim {
		t.Fatalf("features length %d, want %d", len(f), FeatureDim)
	}
	for i, want := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13} {
		if f[i] != want {
			t.Fatalf("feature[%d] = %g, want %g", i, f[i], want)
		}
	}
}

func TestWindowTensorAndFlatten(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := Window{Samples: []Sample{randomSample(rng, 0), randomSample(rng, 250)}}
	x := w.Tensor()
	if x.Dim(0) != 2 || x.Dim(1) != FeatureDim {
		t.Fatalf("tensor shape %v", x.Shape())
	}
	flat := w.Flatten()
	if len(flat) != 2*FeatureDim {
		t.Fatalf("flatten length %d", len(flat))
	}
	for j := 0; j < FeatureDim; j++ {
		if flat[FeatureDim+j] != x.At(1, j) {
			t.Fatal("flatten disagrees with tensor layout")
		}
	}
}

func TestSlidingWindowsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]Sample, 50)
	for i := range samples {
		samples[i] = randomSample(rng, int64(i*250))
	}
	tests := []struct {
		size, stride, want int
	}{
		{20, 20, 2},
		{20, 10, 4},
		{20, 1, 31},
		{50, 1, 1},
		{51, 1, 0},
	}
	for _, tt := range tests {
		ws, err := SlidingWindows(samples, tt.size, tt.stride)
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != tt.want {
			t.Fatalf("size=%d stride=%d: got %d windows, want %d", tt.size, tt.stride, len(ws), tt.want)
		}
	}
	if _, err := SlidingWindows(samples, 0, 1); err == nil {
		t.Fatal("expected size validation error")
	}
	if _, err := SlidingWindows(samples, 1, 0); err == nil {
		t.Fatal("expected stride validation error")
	}
}

func TestSlidingWindowsContent(t *testing.T) {
	samples := make([]Sample, 6)
	for i := range samples {
		samples[i].Accel[0] = float64(i)
	}
	ws, err := SlidingWindows(samples, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("got %d windows", len(ws))
	}
	if ws[1].Samples[0].Accel[0] != 2 {
		t.Fatalf("second window starts at %g", ws[1].Samples[0].Accel[0])
	}
}

func TestFitStatsAndNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var windows []Window
	for i := 0; i < 10; i++ {
		samples := make([]Sample, WindowSize)
		for j := range samples {
			s := randomSample(rng, int64(j*250))
			// Shift accel x so the mean is clearly nonzero.
			s.Accel[0] += 5
			samples[j] = s
		}
		windows = append(windows, Window{Samples: samples})
	}
	st, err := FitStats(windows)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Mean[0]-5) > 0.2 {
		t.Fatalf("accel-x mean = %g, want ~5", st.Mean[0])
	}
	norm := st.Normalize(windows[0])
	if norm.Dim(0) != WindowSize || norm.Dim(1) != FeatureDim {
		t.Fatalf("normalized shape %v", norm.Shape())
	}
	// Normalized feature 0 across all windows should have ~zero mean.
	total, count := 0.0, 0
	for _, w := range windows {
		n := st.Normalize(w)
		for tt := 0; tt < n.Dim(0); tt++ {
			total += n.At(tt, 0)
			count++
		}
	}
	if m := total / float64(count); math.Abs(m) > 1e-9 {
		t.Fatalf("normalized mean = %g, want 0", m)
	}

	flat := st.NormalizeFlat(windows[0])
	if len(flat) != WindowSize*FeatureDim {
		t.Fatalf("normalized flat length %d", len(flat))
	}
	if math.Abs(flat[0]-norm.At(0, 0)) > 1e-12 {
		t.Fatal("NormalizeFlat disagrees with Normalize")
	}
}

func TestFitStatsEmpty(t *testing.T) {
	if _, err := FitStats(nil); err == nil {
		t.Fatal("expected empty-set error")
	}
}

// Property: normalization preserves window length and is invertible given the
// stats (x == norm * std + mean).
func TestNormalizeInvertibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		samples := make([]Sample, 5)
		for i := range samples {
			samples[i] = randomSample(rng, int64(i))
		}
		w := Window{Samples: samples}
		st, err := FitStats([]Window{w})
		if err != nil {
			return false
		}
		norm := st.Normalize(w)
		orig := w.Tensor()
		for t := 0; t < 5; t++ {
			for j := 0; j < FeatureDim; j++ {
				back := norm.At(t, j)*st.Std[j] + st.Mean[j]
				if math.Abs(back-orig.At(t, j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Package imu provides the inertial-measurement substrate: the sensor sample
// type aggregating the four sensors DarNet's collection agent registers
// (accelerometer, gyroscope, gravity, rotation vector), sliding-window
// segmentation at the paper's 4 Hz × 5 s = 20-step geometry, and per-channel
// standardization for the sequence models.
package imu

import (
	"fmt"
	"math"

	"darnet/internal/tensor"
)

// FeatureDim is the per-step feature width: accelerometer (3) + gyroscope (3)
// + gravity (3) + rotation quaternion (4).
const FeatureDim = 13

// Paper window geometry: 4 Hz sampling over a 5-second window.
const (
	WindowSize   = 20 // samples per classification window
	SampleRateHz = 4
)

// Sample is one time step of fused IMU readings.
type Sample struct {
	TimestampMillis int64
	Accel           [3]float64
	Gyro            [3]float64
	Gravity         [3]float64
	Rotation        [4]float64 // unit quaternion (x, y, z, w)
}

// Features flattens the sample into a FeatureDim-wide row.
func (s Sample) Features() []float64 {
	f := make([]float64, 0, FeatureDim)
	f = append(f, s.Accel[0], s.Accel[1], s.Accel[2])
	f = append(f, s.Gyro[0], s.Gyro[1], s.Gyro[2])
	f = append(f, s.Gravity[0], s.Gravity[1], s.Gravity[2])
	f = append(f, s.Rotation[0], s.Rotation[1], s.Rotation[2], s.Rotation[3])
	return f
}

// Window is a fixed-length run of consecutive samples, the unit the sequence
// models classify.
type Window struct {
	Samples []Sample
}

// Tensor converts the window into a (len, FeatureDim) sequence tensor.
func (w Window) Tensor() *tensor.Tensor {
	out := tensor.New(len(w.Samples), FeatureDim)
	for t, s := range w.Samples {
		copy(out.Row(t), s.Features())
	}
	return out
}

// Flatten converts the window into a single row of length len*FeatureDim —
// the representation the SVM baseline consumes.
func (w Window) Flatten() []float64 {
	out := make([]float64, 0, len(w.Samples)*FeatureDim)
	for _, s := range w.Samples {
		out = append(out, s.Features()...)
	}
	return out
}

// SlidingWindows segments a sample stream into windows of the given size and
// stride. It returns an error for non-positive size or stride; streams
// shorter than size yield no windows.
func SlidingWindows(samples []Sample, size, stride int) ([]Window, error) {
	if size <= 0 || stride <= 0 {
		return nil, fmt.Errorf("imu: window size %d and stride %d must be positive", size, stride)
	}
	var out []Window
	for start := 0; start+size <= len(samples); start += stride {
		out = append(out, Window{Samples: samples[start : start+size]})
	}
	return out, nil
}

// Stats holds per-feature mean and standard deviation fitted on training
// windows, applied identically to train and test splits.
type Stats struct {
	Mean [FeatureDim]float64
	Std  [FeatureDim]float64
}

// FitStats computes per-feature statistics across all steps of all windows.
// Zero-variance features get a standard deviation of 1.
func FitStats(windows []Window) (*Stats, error) {
	steps := 0
	for _, w := range windows {
		steps += len(w.Samples)
	}
	if steps == 0 {
		return nil, fmt.Errorf("imu: cannot fit stats on empty window set")
	}
	st := &Stats{}
	for _, w := range windows {
		for _, s := range w.Samples {
			for j, v := range s.Features() {
				st.Mean[j] += v
			}
		}
	}
	for j := range st.Mean {
		st.Mean[j] /= float64(steps)
	}
	for _, w := range windows {
		for _, s := range w.Samples {
			for j, v := range s.Features() {
				d := v - st.Mean[j]
				st.Std[j] += d * d
			}
		}
	}
	for j := range st.Std {
		st.Std[j] = math.Sqrt(st.Std[j] / float64(steps))
		if st.Std[j] < 1e-12 {
			st.Std[j] = 1
		}
	}
	return st, nil
}

// Normalize returns a standardized copy of the window's sequence tensor.
func (st *Stats) Normalize(w Window) *tensor.Tensor {
	out := w.Tensor()
	for t := 0; t < out.Dim(0); t++ {
		row := out.Row(t)
		for j := range row {
			row[j] = (row[j] - st.Mean[j]) / st.Std[j]
		}
	}
	return out
}

// NormalizeFlat returns a standardized flattened row for the SVM baseline.
func (st *Stats) NormalizeFlat(w Window) []float64 {
	out := w.Flatten()
	for i, v := range out {
		j := i % FeatureDim
		out[i] = (v - st.Mean[j]) / st.Std[j]
	}
	return out
}

package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"darnet/internal/telemetry"
)

// TestOpsEndpointsUnderConcurrentWrites hammers /tracez, /metrics, and
// /metrics/history while traces complete and scrapes are written — the
// race-detector gate over the whole observability read path (run with
// `go test -race ./internal/obs/`, which `make race` does).
func TestOpsEndpointsUnderConcurrentWrites(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(16, 2)
	counter := reg.Counter("darnet_test_hammer_total", "")
	hist := reg.Histogram("darnet_test_hammer_seconds", "", nil)

	scraper, err := NewScraper(ScrapeConfig{Registry: reg, Interval: time.Hour, MaxSeries: 64})
	if err != nil {
		t.Fatalf("NewScraper: %v", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", telemetry.NewOpsHandler(reg, tracer))
	mux.Handle("/metrics/history", NewHistoryHandler(scraper.DB()))

	const (
		writers  = 4
		readers  = 4
		rounds   = 200
		urlCount = 3
	)
	urls := []string{
		"/tracez",
		"/metrics?format=json",
		"/metrics/history?series=darnet_test_hammer_total",
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				counter.Inc()
				hist.Observe(float64(i%10) / 100)
				// Complete a cross-process fragment pair: flush root plus a
				// joined ingest child, exercising MergedTraces stitching under
				// concurrent /tracez reads.
				root := tracer.StartRoot("darnet_hammer_flush")
				joined := tracer.JoinRemote("darnet_hammer_ingest", root.Context())
				joined.Segment("darnet_stage_wire_transit", time.Now(), time.Microsecond)
				joined.End()
				root.End()
				if i%10 == 0 {
					scraper.ScrapeOnce()
				}
			}
		}(w)
	}
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < rounds; i++ {
				rec := httptest.NewRecorder()
				url := urls[(r+i)%urlCount]
				mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
				// 404 is legal for /metrics/history before the first scrape
				// lands; anything else non-200 is a real failure.
				if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
					errs <- fmt.Errorf("%s -> %d: %s", url, rec.Code, rec.Body.String())
					return
				}
			}
		}(r)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The hammered counter's history must have landed.
	if scraper.DB().Len("darnet_test_hammer_total") == 0 {
		t.Fatal("no scrapes recorded during the hammer")
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"darnet/internal/telemetry"
)

// fakeClock is a manually-advanced time source.
type fakeClock struct{ at time.Time }

func (c *fakeClock) now() time.Time          { return c.at }
func (c *fakeClock) advance(d time.Duration) { c.at = c.at.Add(d) }

func newTestScraper(t *testing.T, reg *telemetry.Registry, clk *fakeClock, maxSeries int, retention time.Duration) *Scraper {
	t.Helper()
	s, err := NewScraper(ScrapeConfig{
		Registry:  reg,
		Interval:  time.Hour, // background cadence irrelevant: tests drive ScrapeOnce
		MaxSeries: maxSeries,
		Retention: retention,
		Now:       clk.now,
	})
	if err != nil {
		t.Fatalf("NewScraper: %v", err)
	}
	return s
}

func TestScraperSamplesEveryMetricKind(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("darnet_test_events_total", "")
	g := reg.Gauge("darnet_test_depth", "")
	h := reg.Histogram("darnet_test_latency_seconds", "", nil)
	c.Add(7)
	g.Set(3.5)
	h.Observe(0.2)
	h.Observe(0.4)

	clk := &fakeClock{at: time.UnixMilli(1_000_000)}
	s := newTestScraper(t, reg, clk, -1, -1)
	s.ScrapeOnce()

	db := s.DB()
	if got := db.Range("darnet_test_events_total", 0, 1<<62); len(got) != 1 || got[0].Value != 7 {
		t.Fatalf("counter history = %+v", got)
	}
	if got := db.Range("darnet_test_depth", 0, 1<<62); len(got) != 1 || got[0].Value != 3.5 {
		t.Fatalf("gauge history = %+v", got)
	}
	for _, suffix := range []string{".p50", ".p90", ".p99", ".count", ".sum"} {
		series := "darnet_test_latency_seconds" + suffix
		if db.Len(series) != 1 {
			t.Fatalf("histogram sub-series %s missing (have %v)", series, db.Series())
		}
		if !telemetry.ValidHistorySeries(series) {
			t.Fatalf("scraper emitted an invalid history series name %q", series)
		}
	}
	if got := db.Range("darnet_test_latency_seconds.count", 0, 1<<62); got[0].Value != 2 {
		t.Fatalf("histogram count history = %+v", got)
	}

	// A second scrape at a later instant appends, not overwrites.
	c.Inc()
	clk.advance(5 * time.Second)
	s.ScrapeOnce()
	if got := db.Range("darnet_test_events_total", 0, 1<<62); len(got) != 2 || got[1].Value != 8 {
		t.Fatalf("counter history after 2nd scrape = %+v", got)
	}
	if s.Scrapes() != 2 {
		t.Fatalf("Scrapes() = %d", s.Scrapes())
	}
}

func TestScraperBoundsSeriesCardinality(t *testing.T) {
	reg := telemetry.NewRegistry()
	for i := 0; i < 6; i++ {
		reg.Counter(fmt.Sprintf("darnet_test_cardinality_%d_total", i), "")
	}
	clk := &fakeClock{at: time.UnixMilli(1_000_000)}
	s := newTestScraper(t, reg, clk, 4, -1)
	before := mSeriesDropped.Value()
	s.ScrapeOnce()
	if n := len(s.DB().Series()); n != 4 {
		t.Fatalf("partition has %d series, want the bound 4", n)
	}
	if d := mSeriesDropped.Value() - before; d != 2 {
		t.Fatalf("dropped-series counter advanced by %d, want 2", d)
	}
	// The bound drops consistently: the same 4 series keep updating.
	clk.advance(time.Second)
	s.ScrapeOnce()
	for _, series := range s.DB().Series() {
		if got := s.DB().Len(series); got != 2 {
			t.Fatalf("retained series %s has %d points, want 2", series, got)
		}
	}
}

func TestScraperRetentionPrunes(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("darnet_test_retention_total", "")
	clk := &fakeClock{at: time.UnixMilli(1_000_000)}
	s := newTestScraper(t, reg, clk, -1, 10*time.Second)
	for i := 0; i < 5; i++ {
		if i > 0 {
			clk.advance(4 * time.Second)
		}
		s.ScrapeOnce()
	}
	pts := s.DB().Range("darnet_test_retention_total", 0, 1<<62)
	if len(pts) == 0 || len(pts) > 3 {
		t.Fatalf("retention kept %d points, want 1..3 inside the 10s window", len(pts))
	}
	newest := clk.now().UnixMilli() // the final scrape's instant, the prune reference
	for _, p := range pts {
		if newest-p.TimestampMillis > (10 * time.Second).Milliseconds() {
			t.Fatalf("point %+v is older than retention", p)
		}
	}
}

func TestScraperStopTakesFinalFlush(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("darnet_test_final_total", "")
	clk := &fakeClock{at: time.UnixMilli(1_000_000)}
	s := newTestScraper(t, reg, clk, -1, -1)
	s.Start()
	c.Add(41)
	s.Stop()
	s.Stop() // idempotent
	pts := s.DB().Range("darnet_test_final_total", 0, 1<<62)
	if len(pts) == 0 || pts[len(pts)-1].Value != 41 {
		t.Fatalf("final flush missing: %+v", pts)
	}
}

func TestHistoryHandler(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("darnet_test_http_total", "")
	clk := &fakeClock{at: time.UnixMilli(50_000)}
	s := newTestScraper(t, reg, clk, -1, -1)
	c.Add(3)
	s.ScrapeOnce()
	clk.advance(10 * time.Second)
	c.Add(2)
	s.ScrapeOnce()

	h := NewHistoryHandler(s.DB())
	get := func(url string) (*httptest.ResponseRecorder, HistoryResponse) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		var resp HistoryResponse
		if rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("unmarshal %s: %v", url, err)
			}
		}
		return rec, resp
	}

	_, list := get("/metrics/history")
	found := false
	for _, name := range list.Series {
		if name == "darnet_test_http_total" {
			found = true
		}
	}
	if !found {
		t.Fatalf("series listing missing the scraped counter: %+v", list.Series)
	}

	_, resp := get("/metrics/history?series=darnet_test_http_total")
	if len(resp.Points) != 2 || resp.Points[0].Value != 3 || resp.Points[1].Value != 5 {
		t.Fatalf("full range = %+v", resp.Points)
	}

	_, resp = get(fmt.Sprintf("/metrics/history?series=darnet_test_http_total&from=%d&to=%d", 55_000, 1<<61))
	if len(resp.Points) != 1 || resp.Points[0].Value != 5 {
		t.Fatalf("windowed range = %+v", resp.Points)
	}

	if rec, _ := get("/metrics/history?series=darnet_test_missing_total"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown series code = %d", rec.Code)
	}
	if rec, _ := get("/metrics/history?series=darnet_test_http_total&from=xyz"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed from code = %d", rec.Code)
	}
	if rec, _ := get("/metrics/history"); !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("content type = %q", rec.Header().Get("Content-Type"))
	}
}

package obs

import (
	"strings"
	"testing"
	"time"

	"darnet/internal/telemetry"
	"darnet/internal/tsdb"
)

// sloFixture holds a hand-built history partition and an evaluator clock.
type sloFixture struct {
	db  *tsdb.DB
	clk *fakeClock
}

func newSLOFixture() *sloFixture {
	return &sloFixture{db: tsdb.New(), clk: &fakeClock{at: time.UnixMilli(10_000_000)}}
}

// fill writes one point per second for the past d, valued by at(i) where i
// counts seconds back from now (0 = most recent).
func (f *sloFixture) fill(series string, d time.Duration, at func(secsBack int) float64) {
	now := f.clk.at.UnixMilli()
	secs := int(d / time.Second)
	for i := secs; i >= 0; i-- {
		f.db.Insert(series, tsdb.Point{TimestampMillis: now - int64(i)*1000, Value: at(i)})
	}
}

func TestLatencyObjectiveBurn(t *testing.T) {
	f := newSLOFixture()
	// 20 samples in-window, 10 above the 0.5s threshold → bad fraction 0.5;
	// with a 10% budget the burn is 5.
	f.fill("darnet_stream_alert_latency_seconds.p99", 19*time.Second, func(i int) float64 {
		if i%2 == 0 {
			return 1.0
		}
		return 0.1
	})
	o := LatencyObjective("darnet_slo_alert_latency", 0.1, "darnet_stream_alert_latency_seconds.p99", 0.5, f.db)
	now := f.clk.at.UnixMilli()
	bad, total, err := o.Bad(now-20_000, now+1)
	if err != nil || total != 20 || bad != 10 {
		t.Fatalf("bad/total = %v/%v (err %v), want 10/20", bad, total, err)
	}
}

func TestRatioAndRateObjectives(t *testing.T) {
	f := newSLOFixture()
	// Cumulative counters: shed grows 0..30, forwarded grows 0..300.
	f.fill("darnet_stream_readings_shed_total", 30*time.Second, func(i int) float64 { return float64(30 - i) })
	f.fill("darnet_collect_stream_forwarded_total", 30*time.Second, func(i int) float64 { return float64((30 - i) * 10) })
	now := f.clk.at.UnixMilli()

	ratio := RatioObjective("darnet_slo_shed_ratio", 0.05,
		"darnet_stream_readings_shed_total", "darnet_collect_stream_forwarded_total", f.db)
	bad, total, err := ratio.Bad(now-10_000, now+1)
	if err != nil || bad != 10 || total != 100 {
		t.Fatalf("ratio bad/total = %v/%v (err %v), want 10/100", bad, total, err)
	}

	rate := RateObjective("darnet_slo_reconnect_rate", 1, "darnet_stream_readings_shed_total", 2.0, f.db)
	bad, total, err = rate.Bad(now-10_000, now+1)
	if err != nil || bad != 10 {
		t.Fatalf("rate bad = %v (err %v), want 10", bad, err)
	}
	if total < 19 || total > 21 { // 2/sec over ~10s
		t.Fatalf("rate allowed = %v, want ~20", total)
	}

	// A counter reset mid-window falls back to the post-reset value.
	f.db.Insert("darnet_test_reset_total", tsdb.Point{TimestampMillis: now - 2000, Value: 90})
	f.db.Insert("darnet_test_reset_total", tsdb.Point{TimestampMillis: now - 1000, Value: 5})
	d, err := counterDelta(f.db, "darnet_test_reset_total", now-10_000, now+1)
	if err != nil || d != 5 {
		t.Fatalf("reset delta = %v (err %v), want 5", d, err)
	}
}

// scriptedObjective lets the evaluator tests drive burn rates directly: the
// bad fraction equals the scripted value (budget 1 → burn == value).
func scriptedObjective(name string, v *float64) Objective {
	return Objective{Name: name, Budget: 1, Bad: func(from, to int64) (float64, float64, error) {
		return *v, 1, nil
	}}
}

func TestEvaluatorBurnRateTransitions(t *testing.T) {
	frac := 0.0
	clk := &fakeClock{at: time.UnixMilli(10_000_000)}
	ev, err := NewEvaluator(EvaluatorConfig{CleanEvals: 2, Now: clk.now},
		scriptedObjective("darnet_slo_scripted", &frac))
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	if h := ev.Health(); !h.OK || h.Status != "ok" {
		t.Fatalf("initial health = %+v", h)
	}

	// Burn at the slow threshold but below the fast one: degraded, still OK.
	// (The scripted objective reports the same fraction for both windows, so
	// burn 1 ≥ SlowBurn(1) but < FastBurn(6).)
	frac = 1
	if h := ev.Evaluate(); !h.OK || !strings.HasPrefix(h.Status, "degraded:") {
		t.Fatalf("slow-burn health = %+v", h)
	}

	// Burn past both thresholds: breaching, probe goes 503.
	frac = 6
	if h := ev.Evaluate(); h.OK || !strings.HasPrefix(h.Status, "breaching:") {
		t.Fatalf("breach health = %+v", h)
	}

	// Hysteresis: one clean evaluation must NOT de-escalate...
	frac = 0
	if h := ev.Evaluate(); h.OK {
		t.Fatalf("de-escalated after one clean eval: %+v", h)
	}
	// ...the second does, but only one level (breaching → degraded).
	if h := ev.Evaluate(); !h.OK || !strings.HasPrefix(h.Status, "degraded:") {
		t.Fatalf("after 2 clean evals = %+v", h)
	}
	// Two more clean evaluations reach ok.
	ev.Evaluate()
	if h := ev.Evaluate(); !h.OK || h.Status != "ok" {
		t.Fatalf("after 4 clean evals = %+v", h)
	}

	// A dirty evaluation mid-streak resets the hysteresis counter.
	frac = 6
	ev.Evaluate()
	frac = 0
	ev.Evaluate()
	frac = 6
	if h := ev.Evaluate(); h.OK {
		t.Fatalf("re-breach ignored: %+v", h)
	}
	frac = 0
	if h := ev.Evaluate(); h.OK {
		t.Fatalf("clean streak must restart after re-breach: %+v", h)
	}
}

func TestEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(EvaluatorConfig{}); err == nil {
		t.Fatal("evaluator without objectives must be rejected")
	}
	if _, err := NewEvaluator(EvaluatorConfig{}, Objective{Name: "darnet_slo_x", Budget: 0, Bad: func(int64, int64) (float64, float64, error) { return 0, 0, nil }}); err == nil {
		t.Fatal("zero budget must be rejected")
	}
	if _, err := NewEvaluator(EvaluatorConfig{}, Objective{Name: "darnet_slo_x", Budget: 1}); err == nil {
		t.Fatal("nil Bad func must be rejected")
	}
}

func TestCombineHealth(t *testing.T) {
	ok := func() telemetry.Health { return telemetry.Health{Status: "ok", OK: true} }
	degraded := func() telemetry.Health { return telemetry.Health{Status: "degraded: skipping", OK: true} }
	down := func() telemetry.Health { return telemetry.Health{Status: "overloaded", OK: false} }

	if h := CombineHealth(ok, ok)(); h.Status != "ok" || !h.OK {
		t.Fatalf("all-ok = %+v", h)
	}
	if h := CombineHealth(ok, degraded)(); h.Status != "degraded: skipping" || !h.OK {
		t.Fatalf("degraded wins over ok: %+v", h)
	}
	if h := CombineHealth(degraded, down)(); h.OK {
		t.Fatalf("not-OK wins over degraded: %+v", h)
	}
	if h := CombineHealth(nil, ok)(); !h.OK {
		t.Fatalf("nil source skipped: %+v", h)
	}
}

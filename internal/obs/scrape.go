// Package obs is the telemetry→tsdb observability bridge: a background
// scraper that samples every registered metric into a dedicated time-series
// partition (self-hosted metric history, dogfooding internal/tsdb), an HTTP
// query endpoint over that history (/metrics/history), and an SLO evaluator
// that turns the history into fast/slow burn rates driving /healthz with
// hysteresis.
//
// It lives outside internal/telemetry because tsdb itself registers metrics
// into telemetry: the bridge must sit above both to avoid an import cycle.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"darnet/internal/telemetry"
	"darnet/internal/tsdb"
)

// Bridge self-metrics: the scraper observes itself through the same registry
// it scrapes, so scrape lag and cardinality pressure show up in the history.
var (
	mScrapes       = telemetry.NewCounter("darnet_obs_scrapes_total", "telemetry snapshots sampled into the history partition")
	mSamples       = telemetry.NewCounter("darnet_obs_samples_total", "history points written across all series")
	mSeriesDropped = telemetry.NewCounter("darnet_obs_series_dropped_total", "samples refused because the history partition was at its series bound")
	hScrape        = telemetry.NewHistogram("darnet_obs_scrape_seconds", "wall time of one full registry scrape", nil)
)

// DefaultScrapeInterval is how often the scraper samples the registry when
// the config leaves the interval zero.
const DefaultScrapeInterval = 5 * time.Second

// DefaultMaxSeries bounds the history partition's cardinality when the
// config leaves it zero: every registered metric (histograms fan out into 5
// sub-series) plus headroom for metrics registered after startup.
const DefaultMaxSeries = 512

// DefaultRetention is how much history the partition keeps when the config
// leaves it zero. At the default interval that is ~720 points per series.
const DefaultRetention = time.Hour

// ScrapeConfig parameterizes a Scraper.
type ScrapeConfig struct {
	// Registry to sample; nil means telemetry.Default.
	Registry *telemetry.Registry
	// Interval between scrapes; 0 means DefaultScrapeInterval.
	Interval time.Duration
	// MaxSeries bounds the history partition's cardinality: once this many
	// distinct series exist, samples for new series are dropped and counted
	// (darnet_obs_series_dropped_total) instead of growing without limit.
	// 0 means DefaultMaxSeries; negative means unbounded.
	MaxSeries int
	// Retention bounds history age: each scrape prunes points older than
	// now-Retention. 0 means DefaultRetention; negative disables pruning.
	Retention time.Duration
	// Now injects a clock (tests); nil means time.Now.
	Now func() time.Time
}

// Scraper periodically snapshots a telemetry registry into its own dedicated
// tsdb partition: counters and gauges as one series each under the metric
// name, histograms fanned out into name.p50/.p90/.p99/.count/.sum. Start
// launches the background loop; Stop takes one final scrape — so the last
// moments before shutdown are queryable — and blocks until the loop exits.
//
// The series set is bounded by MaxSeries: darnet-lint's qbound analyzer
// verifies every insert is dominated by the cardinality check.
//
//lint:bounded series
type Scraper struct {
	cfg ScrapeConfig
	db  *tsdb.DB

	mu     sync.Mutex // serializes scrapes (background loop vs. final flush)
	series map[string]struct{}

	scrapes atomic.Int64
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	started atomic.Bool
}

// NewScraper validates cfg and returns a scraper with an empty partition.
// The background loop starts with Start.
func NewScraper(cfg ScrapeConfig) (*Scraper, error) {
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultScrapeInterval
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("obs: negative scrape interval %v", cfg.Interval)
	}
	if cfg.MaxSeries == 0 {
		cfg.MaxSeries = DefaultMaxSeries
	}
	if cfg.Retention == 0 {
		cfg.Retention = DefaultRetention
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Scraper{
		cfg:    cfg,
		db:     tsdb.New(),
		series: make(map[string]struct{}),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}, nil
}

// DB exposes the history partition for queries (the /metrics/history handler
// and the SLO evaluator read it). The partition is owned by the scraper;
// callers must not insert into it.
func (s *Scraper) DB() *tsdb.DB { return s.db }

// Scrapes returns how many full snapshots have been sampled.
func (s *Scraper) Scrapes() int64 { return s.scrapes.Load() }

// Start launches the background scrape loop. Calling Start twice panics —
// the loop owns the done channel.
func (s *Scraper) Start() {
	if !s.started.CompareAndSwap(false, true) {
		panic("obs: scraper started twice")
	}
	go s.loop()
}

func (s *Scraper) loop() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.ScrapeOnce()
		}
	}
}

// Stop halts the background loop, takes one final scrape (the shutdown
// flush: the last pre-exit values are queryable), and blocks until the loop
// has exited. Idempotent; safe without Start.
func (s *Scraper) Stop() {
	s.once.Do(func() {
		close(s.stop)
		if s.started.Load() {
			<-s.done
		}
		s.ScrapeOnce()
	})
}

// ScrapeOnce samples the registry into the history partition immediately:
// one point per counter and gauge, five per histogram. Exposed for tests and
// for the shutdown flush; the background loop calls it on every tick.
func (s *Scraper) ScrapeOnce() {
	start := s.cfg.Now()
	defer hScrape.ObserveSince(start)
	now := start.UnixMilli()
	snap := s.cfg.Registry.Snapshot()

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range snap.Counters {
		s.insert(c.Name, now, float64(c.Value))
	}
	for _, g := range snap.Gauges {
		s.insert(g.Name, now, g.Value)
	}
	for _, h := range snap.Histograms {
		s.insert(h.Name+".p50", now, h.P50)
		s.insert(h.Name+".p90", now, h.P90)
		s.insert(h.Name+".p99", now, h.P99)
		s.insert(h.Name+".count", now, float64(h.Count))
		s.insert(h.Name+".sum", now, h.Sum)
	}
	if s.cfg.Retention > 0 {
		s.db.Prune(now - s.cfg.Retention.Milliseconds())
	}
	s.scrapes.Add(1)
	mScrapes.Inc()
}

// insert writes one history point, enforcing the series-cardinality bound:
// a sample for a series beyond the bound is dropped and counted, never
// stored.
func (s *Scraper) insert(series string, tsMillis int64, v float64) {
	if _, ok := s.series[series]; !ok {
		if s.cfg.MaxSeries > 0 && len(s.series) >= s.cfg.MaxSeries {
			mSeriesDropped.Inc()
			return
		}
		s.series[series] = struct{}{}
	}
	s.db.Insert(series, tsdb.Point{TimestampMillis: tsMillis, Value: v})
	mSamples.Inc()
}

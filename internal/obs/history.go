package obs

import (
	"encoding/json"
	"net/http"
	"strconv"

	"darnet/internal/tsdb"
)

// HistoryPoint is one sample of one series in a /metrics/history response.
type HistoryPoint struct {
	TimestampMillis int64   `json:"ts"`
	Value           float64 `json:"v"`
}

// HistoryResponse is the /metrics/history JSON shape: without a series
// parameter the available series names; with one, its points in [from, to).
type HistoryResponse struct {
	Series []string       `json:"series,omitempty"`
	Name   string         `json:"name,omitempty"`
	Points []HistoryPoint `json:"points,omitempty"`
}

// NewHistoryHandler serves the scraped metric history:
//
//	GET /metrics/history                 → list of series names
//	GET /metrics/history?series=NAME     → all points of NAME
//	    &from=MILLIS&to=MILLIS           → restrict to [from, to)
//
// Unknown series return 404; malformed from/to return 400. The handler only
// reads the partition, so it is safe to serve while scrapes are written.
func NewHistoryHandler(db *tsdb.DB) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		name := q.Get("series")
		if name == "" {
			writeHistoryJSON(w, http.StatusOK, HistoryResponse{Series: db.Series()})
			return
		}
		from, to := int64(0), int64(1<<62)
		if s := q.Get("from"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				http.Error(w, "obs: malformed from", http.StatusBadRequest)
				return
			}
			from = v
		}
		if s := q.Get("to"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				http.Error(w, "obs: malformed to", http.StatusBadRequest)
				return
			}
			to = v
		}
		if db.Len(name) == 0 {
			http.Error(w, "obs: unknown series", http.StatusNotFound)
			return
		}
		pts := db.Range(name, from, to)
		resp := HistoryResponse{Name: name, Points: make([]HistoryPoint, 0, len(pts))}
		for _, p := range pts {
			resp.Points = append(resp.Points, HistoryPoint{TimestampMillis: p.TimestampMillis, Value: p.Value})
		}
		writeHistoryJSON(w, http.StatusOK, resp)
	})
}

func writeHistoryJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The response is already committed; a hung-up scraper is not
		// actionable here.
		return
	}
}

package obs

import (
	"fmt"
	"sync"
	"time"

	"darnet/internal/telemetry"
	"darnet/internal/tsdb"
)

// SLO health metrics: the current burn rates and level transitions, so the
// evaluator's own behavior lands in the scraped history too.
var (
	gBurnFast     = telemetry.NewGauge("darnet_obs_slo_burn_fast", "worst fast-window SLO burn rate across objectives")
	gBurnSlow     = telemetry.NewGauge("darnet_obs_slo_burn_slow", "worst slow-window SLO burn rate across objectives")
	mTransitions  = telemetry.NewCounter("darnet_obs_slo_transitions_total", "SLO health level changes (in either direction)")
	gHealthLevel  = telemetry.NewGauge("darnet_obs_slo_level", "current SLO health level: 0 ok, 1 degraded, 2 breaching")
	mObjectiveErr = telemetry.NewCounter("darnet_obs_slo_objective_errors_total", "objective evaluations that failed (missing series, bad window)")
)

// Objective is one SLO: a budgeted bad-event fraction. Bad reports the bad
// and total event counts inside a history window [fromMillis, toMillis); the
// burn rate of a window is (bad/total)/Budget — 1.0 means the error budget
// is being consumed exactly at the sustainable rate, higher burns it faster.
// A window with zero total contributes burn 0 (no data is not bad data).
type Objective struct {
	Name   string
	Budget float64
	Bad    func(fromMillis, toMillis int64) (bad, total float64, err error)
}

// LatencyObjective builds an SLO over a scraped latency percentile: the bad
// fraction is the share of history samples of series (e.g. a .p99 series)
// above threshold seconds. budget is the tolerated bad fraction.
func LatencyObjective(name string, budget float64, series string, threshold float64, db *tsdb.DB) Objective {
	return Objective{Name: name, Budget: budget, Bad: func(from, to int64) (float64, float64, error) {
		pts := db.Range(series, from, to)
		bad := 0
		for _, p := range pts {
			if p.Value > threshold {
				bad++
			}
		}
		return float64(bad), float64(len(pts)), nil
	}}
}

// RatioObjective builds an SLO over two scraped cumulative counters: the bad
// fraction is the in-window increase of badSeries over the in-window
// increase of totalSeries (e.g. shed readings over forwarded readings).
func RatioObjective(name string, budget float64, badSeries, totalSeries string, db *tsdb.DB) Objective {
	return Objective{Name: name, Budget: budget, Bad: func(from, to int64) (float64, float64, error) {
		bad, err := counterDelta(db, badSeries, from, to)
		if err != nil {
			return 0, 0, err
		}
		total, err := counterDelta(db, totalSeries, from, to)
		if err != nil {
			return 0, 0, err
		}
		return bad, total, nil
	}}
}

// RateObjective builds an SLO over one scraped cumulative counter against a
// tolerated event rate: bad is the in-window increase of series, total the
// events maxPerSec would allow over the window, and budget is normally 1 (a
// burn of 1 means events arrive exactly at the tolerated rate).
func RateObjective(name string, budget float64, series string, maxPerSec float64, db *tsdb.DB) Objective {
	return Objective{Name: name, Budget: budget, Bad: func(from, to int64) (float64, float64, error) {
		if maxPerSec <= 0 {
			return 0, 0, fmt.Errorf("obs: rate objective %s: non-positive max rate", name)
		}
		bad, err := counterDelta(db, series, from, to)
		if err != nil {
			return 0, 0, err
		}
		allowed := maxPerSec * float64(to-from) / 1000
		return bad, allowed, nil
	}}
}

// counterDelta returns the increase of a scraped cumulative counter inside
// the window: last sample minus first. A series with under two points in the
// window reports 0 — one scrape tells nothing about a rate.
func counterDelta(db *tsdb.DB, series string, from, to int64) (float64, error) {
	pts := db.Range(series, from, to)
	if len(pts) < 2 {
		return 0, nil
	}
	d := pts[len(pts)-1].Value - pts[0].Value
	if d < 0 {
		// A counter reset (process restart folded into one partition); the
		// post-reset value is the closest available answer.
		d = pts[len(pts)-1].Value
	}
	return d, nil
}

// Health levels, escalating.
const (
	levelOK = iota
	levelDegraded
	levelBreaching
)

// EvaluatorConfig parameterizes the burn-rate health evaluation.
type EvaluatorConfig struct {
	// FastWindow and SlowWindow are the two burn-rate lookbacks (multiwindow
	// alerting: the fast window catches a sudden cliff, the slow window
	// filters blips). Defaults 1m / 15m.
	FastWindow time.Duration
	SlowWindow time.Duration
	// FastBurn and SlowBurn are the breach thresholds: breaching requires
	// BOTH the fast burn ≥ FastBurn (it is still happening) and the slow
	// burn ≥ SlowBurn (it has lasted). Defaults 6 / 1.
	FastBurn float64
	SlowBurn float64
	// CleanEvals is the hysteresis depth: this many consecutive evaluations
	// below every threshold de-escalate the level by ONE step, so health
	// does not flap with a burn rate hovering at its threshold. Default 3.
	CleanEvals int
	// Now injects a clock (tests); nil means time.Now.
	Now func() time.Time
}

func (c *EvaluatorConfig) fillDefaults() {
	if c.FastWindow == 0 {
		c.FastWindow = time.Minute
	}
	if c.SlowWindow == 0 {
		c.SlowWindow = 15 * time.Minute
	}
	if c.FastBurn == 0 {
		c.FastBurn = 6
	}
	if c.SlowBurn == 0 {
		c.SlowBurn = 1
	}
	if c.CleanEvals == 0 {
		c.CleanEvals = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Evaluator turns SLO burn rates into a hysteretic health level. Each
// Evaluate computes every objective's fast- and slow-window burns and moves
// the level:
//
//   - breaching (not OK → /healthz 503) when any objective burns ≥ FastBurn
//     in the fast window AND ≥ SlowBurn in the slow window;
//   - degraded (OK, state visible in the body) when any objective's slow
//     burn ≥ SlowBurn without the fast condition;
//   - escalation is immediate, de-escalation takes CleanEvals consecutive
//     clean evaluations per step — the hysteresis that keeps a hovering burn
//     rate from flapping the probe.
type Evaluator struct {
	cfg        EvaluatorConfig
	objectives []Objective

	mu     sync.Mutex
	level  int
	clean  int
	status string // human-readable detail of the last evaluation
}

// NewEvaluator validates the objectives and returns an evaluator at level ok.
func NewEvaluator(cfg EvaluatorConfig, objectives ...Objective) (*Evaluator, error) {
	cfg.fillDefaults()
	if len(objectives) == 0 {
		return nil, fmt.Errorf("obs: evaluator needs at least one objective")
	}
	for _, o := range objectives {
		if o.Budget <= 0 {
			return nil, fmt.Errorf("obs: objective %s: non-positive budget %g", o.Name, o.Budget)
		}
		if o.Bad == nil {
			return nil, fmt.Errorf("obs: objective %s: nil Bad func", o.Name)
		}
	}
	return &Evaluator{cfg: cfg, objectives: objectives, status: "ok"}, nil
}

// burn computes one objective's burn rate over [now-window, now).
func (e *Evaluator) burn(o Objective, now time.Time, window time.Duration) float64 {
	to := now.UnixMilli()
	bad, total, err := o.Bad(to-window.Milliseconds(), to)
	if err != nil {
		mObjectiveErr.Inc()
		return 0
	}
	if total <= 0 {
		return 0
	}
	return (bad / total) / o.Budget
}

// Evaluate runs one burn-rate pass and returns the resulting health.
func (e *Evaluator) Evaluate() telemetry.Health {
	now := e.cfg.Now()
	worstFast, worstSlow := 0.0, 0.0
	target, detail := levelOK, ""
	for _, o := range e.objectives {
		fast := e.burn(o, now, e.cfg.FastWindow)
		slow := e.burn(o, now, e.cfg.SlowWindow)
		if fast > worstFast {
			worstFast = fast
		}
		if slow > worstSlow {
			worstSlow = slow
		}
		switch {
		case fast >= e.cfg.FastBurn && slow >= e.cfg.SlowBurn:
			if target < levelBreaching {
				target = levelBreaching
				detail = fmt.Sprintf("%s burning %.1fx fast / %.1fx slow", o.Name, fast, slow)
			}
		case slow >= e.cfg.SlowBurn:
			if target < levelDegraded {
				target = levelDegraded
				detail = fmt.Sprintf("%s burning %.1fx slow", o.Name, slow)
			}
		}
	}
	gBurnFast.Set(worstFast)
	gBurnSlow.Set(worstSlow)

	e.mu.Lock()
	defer e.mu.Unlock()
	prev := e.level
	if target > e.level {
		// Escalate immediately; any escalation restarts the clean streak.
		e.level = target
		e.clean = 0
		e.status = detail
	} else if target < e.level {
		e.clean++
		if e.clean >= e.cfg.CleanEvals {
			e.level--
			e.clean = 0
			if e.level == levelOK {
				e.status = "ok"
			} else if detail != "" {
				e.status = detail
			}
		}
	} else {
		e.clean = 0
		if detail != "" {
			e.status = detail
		}
	}
	if e.level != prev {
		mTransitions.Inc()
	}
	gHealthLevel.Set(float64(e.level))
	return e.healthLocked()
}

func (e *Evaluator) healthLocked() telemetry.Health {
	switch e.level {
	case levelBreaching:
		return telemetry.Health{Status: "breaching: " + e.status, OK: false}
	case levelDegraded:
		return telemetry.Health{Status: "degraded: " + e.status, OK: true}
	default:
		return telemetry.Health{Status: "ok", OK: true}
	}
}

// Health returns the level from the most recent Evaluate without running a
// new pass — the cheap read /healthz makes between evaluation ticks.
func (e *Evaluator) Health() telemetry.Health {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.healthLocked()
}

// Run evaluates every interval until stop is closed — the darnetd background
// loop. The first evaluation happens after one interval, not immediately:
// the history needs at least two scrapes before burn rates mean anything.
func (e *Evaluator) Run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			e.Evaluate()
		}
	}
}

// CombineHealth merges health sources, worst first: any not-OK source wins,
// then any non-"ok" status, then ok. darnetd composes the stream mux's
// instantaneous view with the SLO evaluator's burn-rate view.
func CombineHealth(sources ...func() telemetry.Health) func() telemetry.Health {
	return func() telemetry.Health {
		out := telemetry.Health{Status: "ok", OK: true}
		for _, src := range sources {
			if src == nil {
				continue
			}
			h := src()
			if !h.OK {
				return h
			}
			if h.Status != "ok" && out.Status == "ok" {
				out = h
			}
		}
		return out
	}
}

package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darnet/internal/core"
	"darnet/internal/fault"
	"darnet/internal/imu"
	"darnet/internal/telemetry"
	"darnet/internal/wire"
)

// funcTicker adapts a closure into a Ticker for deterministic tests.
type funcTicker struct {
	fn func(sample *imu.Sample, frame []float64, skipFrame bool) (*core.Classification, bool, error)
}

func (f funcTicker) Tick(sample *imu.Sample, frame []float64, skipFrame bool) (*core.Classification, bool, error) {
	return f.fn(sample, frame, skipFrame)
}

func factoryOf(tk Ticker) TickerFactory {
	return func() (Ticker, error) { return tk, nil }
}

// cls builds a classification with the given distracted evidence
// (probs = [1-distracted, distracted], normal class 0).
func cls(distracted float64) *core.Classification {
	return &core.Classification{
		Class:      1,
		Probs:      []float64{1 - distracted, distracted},
		Mode:       core.ModeFused,
		Confidence: distracted,
	}
}

func sampleInput(ts int64) Input {
	return Input{Sample: &imu.Sample{TimestampMillis: ts}, At: time.Unix(0, ts), Weight: 1}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPipelineBoundedUnderSaturation wedges the worker, floods the queue far
// past capacity, and asserts the bound held and every overflow reading was
// counted as shed — the "no silent queue growth" half of the robustness
// contract.
func TestPipelineBoundedUnderSaturation(t *testing.T) {
	const cap = 4
	tokens := make(chan struct{})
	tk := funcTicker{fn: func(*imu.Sample, []float64, bool) (*core.Classification, bool, error) {
		_, ok := <-tokens
		_ = ok
		return nil, false, nil
	}}
	p, err := NewPipeline("a", Config{QueueCap: cap, StallTimeout: time.Hour}, factoryOf(tk))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()

	// Park the worker on the first input so queue depth is fully under test
	// control.
	if !p.Offer(sampleInput(0)) {
		t.Fatal("first offer rejected")
	}
	waitFor(t, "worker busy", func() bool { return p.busySince.Load() != 0 })

	const flood = cap + 7
	admitted := 0
	for i := 1; i <= flood; i++ {
		if p.Offer(sampleInput(int64(i))) {
			admitted++
		}
	}
	s := p.Stats()
	if admitted != cap {
		t.Fatalf("admitted %d of %d floods, want exactly cap %d", admitted, flood, cap)
	}
	if s.MaxDepth > cap {
		t.Fatalf("max queue depth %d exceeded cap %d", s.MaxDepth, cap)
	}
	if s.ShedReadings != flood-cap {
		t.Fatalf("shed %d readings, want %d", s.ShedReadings, flood-cap)
	}

	close(tokens) // release the worker; everything admitted must drain
	waitFor(t, "queue drained", func() bool { return p.Stats().Depth == 0 })
	if got := p.Stats().Enqueued; got != int64(cap)+1 {
		t.Fatalf("enqueued %d, want %d", got, cap+1)
	}
}

// TestFrameSkipHysteresis drives queue depth across the engage and release
// thresholds and asserts skipping turns on, respects FrameSkipMax (every
// (max+1)-th frame classified for real), and turns back off.
func TestFrameSkipHysteresis(t *testing.T) {
	const cap = 8
	tokens := make(chan struct{}, 1024)
	var classified, skippedCount atomic.Int64
	tk := funcTicker{fn: func(_ *imu.Sample, frame []float64, skip bool) (*core.Classification, bool, error) {
		_, ok := <-tokens
		_ = ok
		if frame != nil {
			if skip {
				skippedCount.Add(1)
				return nil, true, nil
			}
			classified.Add(1)
		}
		return nil, false, nil
	}}
	p, err := NewPipeline("a", Config{
		QueueCap: cap, FrameSkipMax: 2, EngageDepth: 6, ReleaseDepth: 2,
		StallTimeout: time.Hour,
	}, factoryOf(tk))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	defer close(tokens)

	frameInput := func(i int) Input { return Input{Frame: []float64{float64(i)}, At: time.Now(), Weight: 1} }

	// Park the worker, then stack 7 more frames: depth 7 ≥ engage 6 when the
	// worker next samples it.
	p.Offer(frameInput(0))
	waitFor(t, "worker busy", func() bool { return p.busySince.Load() != 0 })
	for i := 1; i <= 7; i++ {
		if !p.Offer(frameInput(i)) {
			t.Fatalf("offer %d rejected", i)
		}
	}
	for i := 0; i < 8; i++ {
		tokens <- struct{}{}
	}
	waitFor(t, "burst drained", func() bool { return p.Stats().Depth == 0 })

	s := p.Stats()
	// Depth was ≥ engage when the worker resumed, so skipping must have
	// engaged mid-burst (skips only happen while engaged).
	if s.FramesSkipped == 0 {
		t.Fatal("frame skipping never engaged under a saturated queue")
	}
	if skippedCount.Load() != s.FramesSkipped {
		t.Fatalf("ticker skipped %d but stats say %d", skippedCount.Load(), s.FramesSkipped)
	}
	// FrameSkipMax=2 means within the engaged stretch a real classification
	// happens at least every 3rd frame.
	if classified.Load() == 0 {
		t.Fatal("FrameSkipMax must force periodic real classifications")
	}
	// The drain took depth through the release threshold, so skipping must
	// have disengaged again — degradation is not sticky.
	waitFor(t, "release", func() bool { return !p.Skipping() })
}

// TestAlertHysteresisAndDwell unit-tests the FSM with a fake clock: the score
// band plus dwell must both be crossed, and raise/clear strictly alternate.
func TestAlertHysteresisAndDwell(t *testing.T) {
	fsm := alertFSM{cfg: AlertConfig{NormalClass: 0, Enter: 0.6, Exit: 0.4, Dwell: 100 * time.Millisecond}}
	at := func(ms int64) time.Time { return time.Unix(0, ms*int64(time.Millisecond)) }

	if ev := fsm.observe(at(0), cls(0.9)); ev != core.AlertNone {
		t.Fatalf("first qualifying window raised immediately despite dwell: %v", ev)
	}
	if ev := fsm.observe(at(50), cls(0.9)); ev != core.AlertNone {
		t.Fatalf("raised before dwell elapsed: %v", ev)
	}
	// Dip below Enter resets the dwell clock.
	if ev := fsm.observe(at(60), cls(0.3)); ev != core.AlertNone {
		t.Fatal("dip must not transition")
	}
	if ev := fsm.observe(at(70), cls(0.9)); ev != core.AlertNone {
		t.Fatal("dwell must restart after the dip")
	}
	if ev := fsm.observe(at(200), cls(0.9)); ev != core.AlertRaised {
		t.Fatalf("sustained evidence past dwell must raise, got %v", ev)
	}
	// Mid-band score (between Exit and Enter) keeps the alert raised.
	if ev := fsm.observe(at(250), cls(0.5)); ev != core.AlertNone || !fsm.active {
		t.Fatal("mid-band score must not clear (hysteresis)")
	}
	if ev := fsm.observe(at(300), cls(0.2)); ev != core.AlertNone {
		t.Fatal("clear must also dwell")
	}
	if ev := fsm.observe(at(450), cls(0.2)); ev != core.AlertCleared {
		t.Fatalf("sustained normal past dwell must clear, got %v", ev)
	}

	// Degraded classifications count for half: 0.9 distracted · 0.5 = 0.45 <
	// Enter, so a degraded stream alone cannot raise.
	deg := cls(0.9)
	deg.Mode = core.ModeRNNOnly
	fsm2 := alertFSM{cfg: AlertConfig{NormalClass: 0, Enter: 0.6, Exit: 0.4}}
	if ev := fsm2.observe(at(0), deg); ev != core.AlertNone || fsm2.active {
		t.Fatal("discounted degraded evidence must not cross Enter")
	}
}

// TestWatchdogRestartsStalledStage wedges the first ticker on a fault.Gate,
// lets the watchdog supersede it, and asserts the replacement drains the
// queue, the restart is counted, and Shutdown reaps every generation.
func TestWatchdogRestartsStalledStage(t *testing.T) {
	gate := fault.NewGate()
	var built atomic.Int64
	var processed atomic.Int64
	factory := func() (Ticker, error) {
		n := built.Add(1)
		return funcTicker{fn: func(*imu.Sample, []float64, bool) (*core.Classification, bool, error) {
			if n == 1 {
				gate.Wait() // first generation wedges mid-tick
				return nil, false, nil
			}
			processed.Add(1)
			return nil, false, nil
		}}, nil
	}
	p, err := NewPipeline("a", Config{
		QueueCap: 8, StallTimeout: 50 * time.Millisecond, WatchdogPoll: 10 * time.Millisecond,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}

	p.Offer(sampleInput(1)) // wedges generation 1
	p.Offer(sampleInput(2)) // must be processed by generation 2
	waitFor(t, "watchdog restart", func() bool { return p.Stats().Restarts >= 1 })
	waitFor(t, "replacement drains queue", func() bool { return processed.Load() >= 1 })
	if built.Load() < 2 {
		t.Fatalf("factory built %d tickers, want ≥ 2", built.Load())
	}

	gate.Open() // un-wedge generation 1 so Shutdown can reap it
	p.Shutdown()
	if p.Stats().Restarts < 1 {
		t.Fatal("restart not recorded")
	}
}

// TestMuxRoutingCreditsAndHealth covers the controller-facing surface:
// per-agent pipelines, reading assembly, credit grants shrinking with queue
// depth, and the ok/overloaded/degraded health states.
func TestMuxRoutingCreditsAndHealth(t *testing.T) {
	const cap = 4
	tokens := make(chan struct{})
	tk := funcTicker{fn: func(*imu.Sample, []float64, bool) (*core.Classification, bool, error) {
		_, ok := <-tokens
		_ = ok
		return nil, false, nil
	}}
	m, err := NewMux(Config{QueueCap: cap, StallTimeout: time.Hour}, factoryOf(tk))
	if err != nil {
		t.Fatal(err)
	}

	if c := m.Credits("nobody"); c != cap {
		t.Fatalf("first-contact credits = %d, want full queue %d", c, cap)
	}
	if h := m.Health(); !h.OK || h.Status != "ok" {
		t.Fatalf("idle health = %+v", h)
	}

	imuReading := func(ts int64) wire.Reading {
		return wire.Reading{TimestampMillis: ts, Sensor: "imu", Values: make([]float64, imu.FeatureDim)}
	}
	// Park agent a's worker, then fill its queue exactly.
	accepted, credits := m.Offer("a", []wire.Reading{imuReading(0)}, telemetry.SpanContext{})
	if accepted != 1 {
		t.Fatalf("accepted = %d", accepted)
	}
	waitFor(t, "worker busy", func() bool { return m.Pipeline("a").busySince.Load() != 0 })
	batch := make([]wire.Reading, cap+3)
	for i := range batch {
		batch[i] = imuReading(int64(i + 1))
	}
	accepted, credits = m.Offer("a", batch, telemetry.SpanContext{})
	if accepted != cap {
		t.Fatalf("saturated offer accepted %d, want %d", accepted, cap)
	}
	if credits != 0 {
		t.Fatalf("saturated credits = %d, want 0", credits)
	}
	if h := m.Health(); h.OK || h.Status != "overloaded: classify queue at capacity" {
		t.Fatalf("saturated health = %+v", h)
	}
	if s := m.Pipeline("a").Stats(); s.ShedReadings != 3 || s.MaxDepth != cap {
		t.Fatalf("saturated stats = %+v", s)
	}

	// A second agent gets its own pipeline with its own free queue.
	if c := m.Credits("b"); c != cap {
		t.Fatalf("agent b credits = %d, want %d", c, cap)
	}
	if _, credits = m.Offer("b", []wire.Reading{imuReading(0)}, telemetry.SpanContext{}); credits > cap {
		t.Fatalf("agent b credits after offer = %d", credits)
	}
	if m.Pipeline("a") == m.Pipeline("b") {
		t.Fatal("agents must not share a pipeline")
	}

	close(tokens)
	waitFor(t, "drain", func() bool { return m.Stats().Depth == 0 })
	m.Shutdown()
	if c := m.Credits("a"); c != 0 {
		t.Fatalf("credits after shutdown = %d, want 0", c)
	}
	if a, _ := m.Offer("a", []wire.Reading{imuReading(9)}, telemetry.SpanContext{}); a != 0 {
		t.Fatalf("offer after shutdown accepted %d", a)
	}
	if h := m.Health(); h.OK {
		t.Fatalf("health after shutdown = %+v", h)
	}
}

// TestAssembler covers the reading-to-input reassembly: four-channel
// grouping by timestamp, the pre-fused and frame fast paths, ignored
// channels, and the bounded pending set.
func TestAssembler(t *testing.T) {
	a := newAssembler()
	at := time.Unix(0, 0)

	r := func(ts int64, sensor string, n int) wire.Reading {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(ts*100) + float64(i)
		}
		return wire.Reading{TimestampMillis: ts, Sensor: sensor, Values: vals}
	}

	// Four channels with one timestamp complete one sample.
	for _, sensor := range []struct {
		name string
		n    int
	}{{"accel", 3}, {"gyro", 3}, {"gravity", 3}} {
		if _, ok := a.push(r(7, sensor.name, sensor.n), at); ok {
			t.Fatalf("%s alone completed a sample", sensor.name)
		}
	}
	in, ok := a.push(r(7, "rotation", 4), at)
	if !ok || in.Sample == nil || in.Weight != 4 {
		t.Fatalf("four channels did not complete a sample: %+v ok=%v", in, ok)
	}
	if in.Sample.TimestampMillis != 7 || in.Sample.Accel[1] != 701 || in.Sample.Rotation[3] != 703 {
		t.Fatalf("assembled sample mismatch: %+v", in.Sample)
	}
	if len(a.pending) != 0 || len(a.order) != 0 {
		t.Fatalf("completed sample left state: pending=%d order=%d", len(a.pending), len(a.order))
	}

	// Pre-fused 13-wide channel and the frame channel pass straight through.
	if in, ok := a.push(r(8, "imu", imu.FeatureDim), at); !ok || in.Sample == nil || in.Sample.Gyro[0] != 803 {
		t.Fatalf("imu fast path: %+v ok=%v", in, ok)
	}
	if in, ok := a.push(r(9, "frame", 16), at); !ok || in.Frame == nil || len(in.Frame) != 16 {
		t.Fatalf("frame path: %+v ok=%v", in, ok)
	}

	// Unknown channels and wrong arities are ignored, counted.
	before := mReadingsIgnored.Value()
	if _, ok := a.push(r(10, "thermometer", 1), at); ok {
		t.Fatal("unknown sensor produced an input")
	}
	if _, ok := a.push(r(11, "accel", 2), at); ok {
		t.Fatal("wrong-arity accel produced an input")
	}
	if mReadingsIgnored.Value()-before != 2 {
		t.Fatal("ignored readings not counted")
	}

	// The pending set is bounded: flooding partials evicts oldest, counted.
	dropBefore := mPartialDropped.Value()
	for ts := int64(100); ts < 100+int64(maxPartial)+10; ts++ {
		a.push(r(ts, "accel", 3), at)
	}
	if len(a.pending) > maxPartial {
		t.Fatalf("pending set grew to %d, bound is %d", len(a.pending), maxPartial)
	}
	if mPartialDropped.Value()-dropBefore != 10 {
		t.Fatalf("evictions counted %d, want 10", mPartialDropped.Value()-dropBefore)
	}
}

// TestPipelineAlertsEndToEnd runs scripted classifications through a real
// pipeline and asserts transitions strictly alternate (no duplicate raise).
func TestPipelineAlertsEndToEnd(t *testing.T) {
	var script []*core.Classification
	for i := 0; i < 5; i++ {
		script = append(script, cls(0.9))
	}
	for i := 0; i < 5; i++ {
		script = append(script, cls(0.1))
	}
	for i := 0; i < 5; i++ {
		script = append(script, cls(0.9))
	}
	var idx atomic.Int64
	tk := funcTicker{fn: func(*imu.Sample, []float64, bool) (*core.Classification, bool, error) {
		i := idx.Add(1) - 1
		if int(i) < len(script) {
			return script[i], false, nil
		}
		return nil, false, nil
	}}
	var mu sync.Mutex
	var events []core.AlertEvent
	p, err := NewPipeline("a", Config{
		QueueCap: 32, StallTimeout: time.Hour,
		Alert: AlertConfig{NormalClass: 0, Enter: 0.6, Exit: 0.4, Dwell: 0},
		OnAlert: func(_ string, ev core.AlertEvent, _ *core.Classification) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}, factoryOf(tk))
	if err != nil {
		t.Fatal(err)
	}
	for i := range script {
		if !p.Offer(sampleInput(int64(i))) {
			t.Fatalf("offer %d rejected", i)
		}
	}
	waitFor(t, "script consumed", func() bool { return p.Stats().Decisions >= int64(len(script)) })
	p.Shutdown()

	mu.Lock()
	defer mu.Unlock()
	want := []core.AlertEvent{core.AlertRaised, core.AlertCleared, core.AlertRaised}
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Fatalf("alert transitions = %v, want %v", events, want)
	}
	s := p.Stats()
	if s.AlertsRaised != 2 || s.AlertsCleared != 1 {
		t.Fatalf("alert counters = %+v", s)
	}
}

func TestConfigValidation(t *testing.T) {
	tkf := factoryOf(funcTicker{fn: func(*imu.Sample, []float64, bool) (*core.Classification, bool, error) {
		return nil, false, nil
	}})
	bad := []Config{
		{QueueCap: 0},
		{QueueCap: -3},
		{QueueCap: 8, FrameSkipMax: -1},
		{QueueCap: 8, EngageDepth: 2, ReleaseDepth: 5},
		{QueueCap: 8, EngageDepth: 20, ReleaseDepth: 1},
		{QueueCap: 8, Alert: AlertConfig{NormalClass: -1}},
		{QueueCap: 8, Alert: AlertConfig{Enter: 0.3, Exit: 0.5}},
		{QueueCap: 8, Alert: AlertConfig{Dwell: -time.Second}},
	}
	for i, cfg := range bad {
		if _, err := NewPipeline("a", cfg, tkf); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
		if _, err := NewMux(cfg, tkf); err == nil {
			t.Errorf("mux config %d accepted: %+v", i, cfg)
		}
	}
	p, err := NewPipeline("a", Config{QueueCap: 8}, tkf)
	if err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	p.Shutdown()
	if _, err := NewPipeline("a", Config{QueueCap: 8}, nil); err == nil {
		t.Error("nil factory accepted")
	}
}

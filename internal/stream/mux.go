package stream

import (
	"sync"
	"time"

	"darnet/internal/telemetry"
	"darnet/internal/wire"
)

// recentRestartWindow is how long after a watchdog restart the mux keeps
// reporting degraded health, so a probe between restarts sees the instability
// rather than a lucky "ok".
const recentRestartWindow = 30 * time.Second

// Mux routes each agent's readings to that agent's pipeline, creating
// pipelines on first contact. It satisfies collect's StreamSink contract
// structurally (Offer + Credits), so collect never imports this package, and
// doubles as the process health source: ok / degraded (frame skipping or a
// recent watchdog restart) / overloaded (a classify queue at capacity).
type Mux struct {
	cfg     Config
	factory TickerFactory

	mu      sync.Mutex
	pipes   map[string]*Pipeline
	stopped bool
}

// NewMux validates the shared pipeline config and returns an empty mux.
func NewMux(cfg Config, f TickerFactory) (*Mux, error) {
	probe := cfg
	probe.fillDefaults()
	if err := probe.validate(); err != nil {
		return nil, err
	}
	return &Mux{cfg: cfg, factory: f, pipes: make(map[string]*Pipeline)}, nil
}

// pipeline returns the agent's pipeline, creating it on first contact.
func (m *Mux) pipeline(agentID string) (*Pipeline, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return nil, nil
	}
	if p, ok := m.pipes[agentID]; ok {
		return p, nil
	}
	p, err := NewPipeline(agentID, m.cfg, m.factory)
	if err != nil {
		return nil, err
	}
	m.pipes[agentID] = p
	return p, nil
}

// Offer admits a stored batch's readings into the agent's pipeline and
// returns the number accepted plus the refreshed admission grant. The
// controller calls this once per stored batch; trace (zero when the batch
// carried none) joins the classify tick into the batch's distributed trace.
func (m *Mux) Offer(agentID string, readings []wire.Reading, trace telemetry.SpanContext) (accepted int, credits uint32) {
	p, err := m.pipeline(agentID)
	if err != nil || p == nil {
		if err != nil {
			mTickErrors.Inc()
		}
		return 0, 0
	}
	return p.OfferReadings(readings, trace), p.Credits()
}

// Credits returns the agent's current admission grant without offering work
// — the controller attaches this to hello, heartbeat, and duplicate acks so
// a deferring agent learns when slots free up.
func (m *Mux) Credits(agentID string) uint32 {
	m.mu.Lock()
	p, ok := m.pipes[agentID]
	stopped := m.stopped
	m.mu.Unlock()
	if stopped {
		return 0
	}
	if !ok {
		// First contact: the pipeline does not exist yet, so the whole queue
		// is free.
		return uint32(maxInt(1, m.cfg.QueueCap))
	}
	return p.Credits()
}

// Pipeline returns the agent's pipeline for inspection, or nil.
func (m *Mux) Pipeline(agentID string) *Pipeline {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pipes[agentID]
}

// Stats aggregates all pipelines' snapshots.
func (m *Mux) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var agg Stats
	for _, p := range m.pipes {
		s := p.Stats()
		agg.Enqueued += s.Enqueued
		agg.ShedReadings += s.ShedReadings
		agg.Depth += s.Depth
		if s.MaxDepth > agg.MaxDepth {
			agg.MaxDepth = s.MaxDepth
		}
		agg.Frames += s.Frames
		agg.FramesSkipped += s.FramesSkipped
		agg.Decisions += s.Decisions
		agg.TickErrors += s.TickErrors
		agg.Restarts += s.Restarts
		agg.AlertsRaised += s.AlertsRaised
		agg.AlertsCleared += s.AlertsCleared
	}
	return agg
}

// Health implements the /healthz source: overloaded (not OK → 503) when any
// classify queue is at capacity right now, degraded (OK, state in the body)
// when frame skipping is engaged or a watchdog restart happened recently,
// ok otherwise.
func (m *Mux) Health() telemetry.Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return telemetry.Health{Status: "shutting down", OK: false}
	}
	now := m.cfg.Now
	if now == nil {
		now = time.Now
	}
	degraded := ""
	for _, p := range m.pipes {
		if p.depth.Load() >= int64(p.cfg.QueueCap) {
			return telemetry.Health{Status: "overloaded: classify queue at capacity", OK: false}
		}
		if p.Skipping() {
			degraded = "degraded: frame-skipping engaged"
		} else if lr := p.lastRestart.Load(); lr != 0 && now().UnixNano()-lr < int64(recentRestartWindow) && degraded == "" {
			degraded = "degraded: watchdog restarted a stage"
		}
	}
	if degraded != "" {
		return telemetry.Health{Status: degraded, OK: true}
	}
	return telemetry.Health{Status: "ok", OK: true}
}

// Shutdown stops every pipeline and rejects further offers. Blocks until all
// pipeline goroutines have exited; idempotent.
func (m *Mux) Shutdown() {
	m.mu.Lock()
	m.stopped = true
	pipes := make([]*Pipeline, 0, len(m.pipes))
	for _, p := range m.pipes {
		pipes = append(pipes, p)
	}
	m.mu.Unlock()
	for _, p := range pipes {
		p.Shutdown()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package stream

import (
	"darnet/internal/core"
	"darnet/internal/imu"
)

// EngineTicker drives a trained core.Engine for one agent's stream: frames
// run the CNN (or reuse the previous distribution under frame skipping), IMU
// samples advance the incremental RNN stream, and a completed window fuses
// both modalities through the Bayesian Network — composing with the engine's
// degraded modes when a modality has not been seen at all.
type EngineTicker struct {
	eng     *core.Engine
	imu     *core.IMUStream
	lastCNN []float64
}

// EngineTickerFactory returns a TickerFactory over a shared trained engine.
// Each call builds a fresh recurrent stream, so watchdog restarts reset the
// in-flight window while the (immutable, read-only) model weights are shared
// across agents.
func EngineTickerFactory(eng *core.Engine) TickerFactory {
	return func() (Ticker, error) {
		st, err := eng.NewIMUStream()
		if err != nil {
			return nil, err
		}
		return &EngineTicker{eng: eng, imu: st}, nil
	}
}

// Tick implements Ticker.
func (t *EngineTicker) Tick(sample *imu.Sample, frame []float64, skipFrame bool) (*core.Classification, bool, error) {
	skipped := false
	if frame != nil {
		if skipFrame && t.lastCNN != nil {
			skipped = true // reuse the previous CNN distribution
		} else {
			probs, err := t.eng.FrameProbs(frame)
			if err != nil {
				return nil, false, err
			}
			t.lastCNN = probs
		}
	}
	if sample == nil {
		return nil, skipped, nil
	}
	ready, err := t.imu.Push(*sample)
	if err != nil {
		return nil, skipped, err
	}
	if !ready {
		return nil, skipped, nil
	}
	rnnProbs, err := t.imu.Classify()
	if err != nil {
		return nil, skipped, err
	}
	cls, err := t.eng.Fuse(t.lastCNN, rnnProbs)
	if err != nil {
		return nil, skipped, err
	}
	return cls, skipped, nil
}

package stream

import (
	"time"

	"darnet/internal/collect"
	"darnet/internal/imu"
	"darnet/internal/telemetry"
	"darnet/internal/wire"
)

// Input is one classify-stage work item: an assembled IMU sample, a camera
// frame, or both (when the two channels share a timestamp).
type Input struct {
	Sample *imu.Sample
	Frame  []float64
	// At is the admission time, the start of the alert-latency measurement.
	At time.Time
	// Weight is the number of wire readings this input represents, so that
	// shedding one queued item accounts for every reading it carried.
	Weight int
	// Trace is the admitting stream_offer span's context (zero when the batch
	// carried none): the classify tick joins it, so the queue dwell between
	// admission (At) and processing shows up in the distributed trace.
	Trace telemetry.SpanContext
}

// Sample-channel bits for partial assembly.
const (
	maskAccel = 1 << iota
	maskGyro
	maskGravity
	maskRotation
	maskComplete = maskAccel | maskGyro | maskGravity | maskRotation
)

// maxPartial bounds the assembler's pending set: a chaos-corrupted or
// reordered stream cannot grow memory by leaving samples forever incomplete.
const maxPartial = 64

// assembler reassembles wire readings into classify inputs. The standard IMU
// agent polls its four sensors in one tick, stamping them with the same
// timestamp, so grouping by timestamp recovers the imu.Sample; the reserved
// frame channel and a pre-fused 13-wide "imu" channel pass through directly.
// Not safe for concurrent use — the pipeline guards it.
type assembler struct {
	pending map[int64]*partialSample
	order   []int64 // insertion order for bounded eviction
}

type partialSample struct {
	sample imu.Sample
	mask   uint8
}

func newAssembler() *assembler {
	return &assembler{pending: make(map[int64]*partialSample)}
}

// push consumes one reading and reports the completed input, if any. The
// bool is false while a sample is still partial or the reading is ignored.
func (a *assembler) push(r wire.Reading, at time.Time) (Input, bool) {
	switch {
	case r.Sensor == collect.FrameSensorName:
		return Input{Frame: append([]float64(nil), r.Values...), At: at, Weight: 1}, true
	case r.Sensor == "imu" && len(r.Values) == imu.FeatureDim:
		s := sampleFromFeatures(r.TimestampMillis, r.Values)
		return Input{Sample: &s, At: at, Weight: 1}, true
	case r.Sensor == "accel" && len(r.Values) == 3:
		return a.fill(r, at, maskAccel, func(p *partialSample) { copy(p.sample.Accel[:], r.Values) })
	case r.Sensor == "gyro" && len(r.Values) == 3:
		return a.fill(r, at, maskGyro, func(p *partialSample) { copy(p.sample.Gyro[:], r.Values) })
	case r.Sensor == "gravity" && len(r.Values) == 3:
		return a.fill(r, at, maskGravity, func(p *partialSample) { copy(p.sample.Gravity[:], r.Values) })
	case r.Sensor == "rotation" && len(r.Values) == 4:
		return a.fill(r, at, maskRotation, func(p *partialSample) { copy(p.sample.Rotation[:], r.Values) })
	default:
		mReadingsIgnored.Inc()
		return Input{}, false
	}
}

func (a *assembler) fill(r wire.Reading, at time.Time, bit uint8, set func(*partialSample)) (Input, bool) {
	p, ok := a.pending[r.TimestampMillis]
	if !ok {
		p = &partialSample{sample: imu.Sample{TimestampMillis: r.TimestampMillis}}
		a.pending[r.TimestampMillis] = p
		a.order = append(a.order, r.TimestampMillis)
		a.evict()
	}
	set(p)
	p.mask |= bit
	if p.mask != maskComplete {
		return Input{}, false
	}
	delete(a.pending, r.TimestampMillis)
	a.removeOrder(r.TimestampMillis)
	return Input{Sample: &p.sample, At: at, Weight: 4}, true
}

// removeOrder drops a completed timestamp from the eviction order so the
// order slice tracks the pending set instead of growing with every sample.
func (a *assembler) removeOrder(ts int64) {
	for i, v := range a.order {
		if v == ts {
			a.order = append(a.order[:i], a.order[i+1:]...)
			return
		}
	}
}

// evict drops the oldest still-pending partial once the set exceeds its
// bound, counting the loss instead of growing without limit.
func (a *assembler) evict() {
	for len(a.pending) > maxPartial {
		for len(a.order) > 0 {
			ts := a.order[0]
			a.order = a.order[1:]
			if _, ok := a.pending[ts]; ok {
				delete(a.pending, ts)
				mPartialDropped.Inc()
				break
			}
		}
	}
}

func sampleFromFeatures(ts int64, v []float64) imu.Sample {
	var s imu.Sample
	s.TimestampMillis = ts
	copy(s.Accel[:], v[0:3])
	copy(s.Gyro[:], v[3:6])
	copy(s.Gravity[:], v[6:9])
	copy(s.Rotation[:], v[9:13])
	return s
}

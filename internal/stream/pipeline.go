// Package stream is the per-agent streaming classification pipeline: a
// bounded classify work queue fed by the collection controller, drained by a
// worker that advances the incremental RNN stream sample by sample, with
// credit-based backpressure to the agent's spill buffer, frame-skip
// degradation under load, a hysteretic alert state machine, and a watchdog
// that restarts a stalled stage.
//
// The robustness contract: when input outruns classification, memory stays
// bounded (queue at cap, spill at cap, assembler at cap — everything else
// sheds oldest-first or newest-at-the-valve) and every loss is counted in
// telemetry rather than silent.
package stream

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"darnet/internal/core"
	"darnet/internal/imu"
	"darnet/internal/telemetry"
	"darnet/internal/wire"
)

// Ticker consumes one classify input and returns a Classification when an
// IMU window completes (nil otherwise). skipFrame asks the implementation to
// reuse its previous CNN distribution instead of running the CNN; skipped
// reports whether it actually did (a ticker with no previous distribution
// must classify the frame regardless). Implementations own their recurrent
// state; the pipeline creates a fresh Ticker when the watchdog restarts a
// wedged stage, so in-flight window state is reset on restart — the
// documented cost of recovering a stalled worker.
type Ticker interface {
	Tick(sample *imu.Sample, frame []float64, skipFrame bool) (cls *core.Classification, skipped bool, err error)
}

// TickerFactory builds a fresh Ticker: once at pipeline start and again on
// every watchdog restart.
type TickerFactory func() (Ticker, error)

// Config parameterizes one agent pipeline (and, via Mux, all of them).
type Config struct {
	// QueueCap bounds the classify work queue. Admission past the cap sheds
	// the input, counted in darnet_stream_readings_shed_total.
	QueueCap int
	// FrameSkipMax is the maximum consecutive frames that may reuse the last
	// CNN distribution while frame skipping is engaged: every
	// (FrameSkipMax+1)-th frame is classified for real. 0 disables skipping.
	FrameSkipMax int
	// EngageDepth and ReleaseDepth are the queue-depth hysteresis band for
	// frame skipping: skipping engages at depth ≥ EngageDepth and releases
	// at depth ≤ ReleaseDepth. Defaults: 3·cap/4 and cap/4.
	EngageDepth  int
	ReleaseDepth int
	// Alert parameterizes the hysteretic alert state machine.
	Alert AlertConfig
	// StallTimeout is how long the stage may make no progress (while work is
	// queued or a tick is in flight) before the watchdog restarts it.
	// Default 5s.
	StallTimeout time.Duration
	// WatchdogPoll is the stall-check interval. Default StallTimeout/4.
	WatchdogPoll time.Duration
	// Now injects a clock for the alert FSM and watchdog (tests); defaults
	// to time.Now.
	Now func() time.Time
	// OnAlert, when non-nil, receives every alert transition with the
	// classification that caused it. Called from the worker goroutine.
	OnAlert func(agentID string, ev core.AlertEvent, cls *core.Classification)
	// OnDecision, when non-nil, receives every completed-window
	// classification. Called from the worker goroutine.
	OnDecision func(agentID string, cls *core.Classification)
}

func (c *Config) fillDefaults() {
	if c.EngageDepth == 0 {
		c.EngageDepth = max(1, 3*c.QueueCap/4)
	}
	if c.ReleaseDepth == 0 {
		c.ReleaseDepth = c.QueueCap / 4
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 5 * time.Second
	}
	if c.WatchdogPoll == 0 {
		c.WatchdogPoll = c.StallTimeout / 4
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	c.Alert.fillDefaults()
}

func (c *Config) validate() error {
	if c.QueueCap < 1 {
		return fmt.Errorf("stream: queue capacity must be >= 1, got %d", c.QueueCap)
	}
	if c.FrameSkipMax < 0 {
		return fmt.Errorf("stream: negative frame-skip max %d", c.FrameSkipMax)
	}
	if c.ReleaseDepth >= c.EngageDepth {
		return fmt.Errorf("stream: frame-skip release depth %d must be below engage depth %d (hysteresis band)", c.ReleaseDepth, c.EngageDepth)
	}
	if c.EngageDepth > c.QueueCap {
		return fmt.Errorf("stream: engage depth %d exceeds queue capacity %d", c.EngageDepth, c.QueueCap)
	}
	if c.StallTimeout < 0 || c.WatchdogPoll < 0 {
		return fmt.Errorf("stream: negative watchdog timing")
	}
	return c.Alert.validate()
}

// Stats is a point-in-time snapshot of one pipeline's counters, the
// bounded-memory evidence the saturation tests and the stream benchmark
// assert over.
type Stats struct {
	Enqueued      int64 // inputs admitted to the queue
	ShedReadings  int64 // readings dropped at the full queue
	Depth         int64 // current queue depth
	MaxDepth      int64 // highest observed queue depth (≤ QueueCap always)
	Frames        int64 // frames reaching the classify stage
	FramesSkipped int64 // frames that reused the previous CNN distribution
	Decisions     int64 // completed-window classifications
	TickErrors    int64
	Restarts      int64 // watchdog stage restarts
	AlertsRaised  int64
	AlertsCleared int64
}

// Pipeline is the classify stage for one agent: a bounded queue, a single
// worker goroutine (the recurrent state is inherently sequential), and a
// watchdog. Offer may be called from multiple producers; everything else the
// pipeline owns.
//
// The depth counter is the queue's occupancy ledger: darnet-lint's qbound
// analyzer verifies every increment is dominated by a capacity check and
// every CAS admission is committed or released on all paths.
//
//lint:bounded depth
type Pipeline struct {
	agentID   string
	cfg       Config
	newTicker TickerFactory

	queue    chan Input
	stop     chan struct{}
	stopOnce sync.Once
	stopped  atomic.Bool
	wg       sync.WaitGroup

	// gen is the live worker generation: a worker that wakes up superseded
	// re-offers its item and exits, so a wedged-then-recovered goroutine can
	// never interleave with its replacement.
	gen atomic.Int64

	depth        atomic.Int64
	maxDepth     atomic.Int64
	busySince    atomic.Int64 // unix nanos of the in-flight tick's start, 0 when idle
	lastProgress atomic.Int64 // unix nanos of the last completed tick
	lastRestart  atomic.Int64

	skipping atomic.Bool // frame-skip hysteresis state (read by Health)

	amu sync.Mutex // guards asm (reconnecting agents can race two producers)
	asm *assembler

	alertMu sync.Mutex // guards alert across worker generations
	alert   alertFSM

	enqueued      atomic.Int64
	shedReadings  atomic.Int64
	frames        atomic.Int64
	framesSkipped atomic.Int64
	decisions     atomic.Int64
	tickErrors    atomic.Int64
	restarts      atomic.Int64
	alertsRaised  atomic.Int64
	alertsCleared atomic.Int64
}

// NewPipeline builds and starts the pipeline for one agent: the worker and
// watchdog goroutines run until Shutdown.
func NewPipeline(agentID string, cfg Config, f TickerFactory) (*Pipeline, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("stream: nil ticker factory")
	}
	tk, err := f()
	if err != nil {
		return nil, fmt.Errorf("stream: build ticker: %w", err)
	}
	p := &Pipeline{
		agentID:   agentID,
		cfg:       cfg,
		newTicker: f,
		queue:     make(chan Input, cfg.QueueCap),
		stop:      make(chan struct{}),
		asm:       newAssembler(),
		alert:     alertFSM{cfg: cfg.Alert},
	}
	p.lastProgress.Store(cfg.Now().UnixNano())
	p.wg.Add(2)
	go p.worker(p.gen.Load(), tk)
	go p.watchdog()
	return p, nil
}

// OfferReadings assembles a batch of wire readings into classify inputs and
// admits them, returning how many readings were accepted (enqueued, absorbed
// into a partial sample, or ignored as unclassifiable). The difference from
// len(readings) was shed at the full queue. The trace context (zero when
// absent) rides each admitted input so the classify tick joins the batch's
// distributed trace.
func (p *Pipeline) OfferReadings(readings []wire.Reading, trace telemetry.SpanContext) (accepted int) {
	at := p.cfg.Now()
	p.amu.Lock()
	defer p.amu.Unlock()
	for _, r := range readings {
		in, ok := p.asm.push(r, at)
		if !ok {
			accepted++ // partial or ignored: nothing queued, nothing shed
			continue
		}
		in.Trace = trace
		if p.Offer(in) {
			accepted += in.Weight
		}
	}
	return accepted
}

// Offer admits one input to the classify queue, shedding it (counted) when
// the queue is at capacity or the pipeline has shut down. Safe for multiple
// producers; the depth counter, incremented before the send and decremented
// after the receive, guarantees MaxDepth never exceeds QueueCap.
func (p *Pipeline) Offer(in Input) bool {
	if p.stopped.Load() {
		p.shed(in)
		return false
	}
	cap64 := int64(p.cfg.QueueCap)
	for {
		d := p.depth.Load()
		if d >= cap64 {
			p.shed(in)
			return false
		}
		if p.depth.CompareAndSwap(d, d+1) {
			for {
				m := p.maxDepth.Load()
				if d+1 <= m || p.maxDepth.CompareAndSwap(m, d+1) {
					break
				}
			}
			break
		}
	}
	select {
	case p.queue <- in:
		gQueueDepth.Add(1)
		p.enqueued.Add(1)
		return true
	default:
		// Unreachable given the depth accounting; kept as defense so a bug
		// degrades to a counted shed instead of a blocked producer.
		p.depth.Add(-1)
		p.shed(in)
		return false
	}
}

func (p *Pipeline) shed(in Input) {
	p.shedReadings.Add(int64(in.Weight))
	mReadingsShed.Add(int64(in.Weight))
}

// Credits returns the current admission grant: free queue slots.
func (p *Pipeline) Credits() uint32 {
	if p.stopped.Load() {
		return 0
	}
	free := int64(p.cfg.QueueCap) - p.depth.Load()
	if free < 0 {
		free = 0
	}
	return uint32(free)
}

// worker drains the queue for one generation. The recurrent state (the
// Ticker) is generation-owned: a superseded worker never ticks again, it
// re-offers the input it dequeued and exits. The goroutine runs under pprof
// labels (agent ID, pipeline stage) so /debug/pprof/goroutine profiles are
// attributable per agent.
func (p *Pipeline) worker(gen int64, tk Ticker) {
	defer p.wg.Done()
	pprof.Do(context.Background(), pprof.Labels("darnet_agent", p.agentID, "darnet_stage", "stream_worker"), func(context.Context) {
		p.drain(gen, tk)
	})
}

func (p *Pipeline) drain(gen int64, tk Ticker) {
	skipStreak := 0
	for {
		select {
		case <-p.stop:
			return
		case in := <-p.queue:
			p.depth.Add(-1)
			gQueueDepth.Add(-1)
			if p.gen.Load() != gen {
				mStaleReoffers.Inc()
				p.Offer(in)
				return
			}
			p.busySince.Store(p.cfg.Now().UnixNano())
			p.runTick(tk, in, &skipStreak)
			p.busySince.Store(0)
			p.lastProgress.Store(p.cfg.Now().UnixNano())
		}
	}
}

// runTick classifies one input, applying frame-skip hysteresis, feeding the
// alert state machine, and recovering panics so one poisoned input cannot
// kill the stage (the watchdog would revive it, but without losing the
// queue's other items to the restart).
func (p *Pipeline) runTick(tk Ticker, in Input, skipStreak *int) {
	defer func() {
		if r := recover(); r != nil {
			mTickPanics.Inc()
			p.tickErrors.Add(1)
		}
	}()

	// Join the batch's distributed trace when the input carries a context —
	// the dwell between admission and this dequeue becomes an explicit
	// segment. Legacy inputs (zero context) get no tick span at all, so they
	// neither consume the local sampling budget nor clutter /tracez.
	var root *telemetry.Span
	if in.Trace.Valid() {
		root = telemetry.DefaultTracer.JoinRemote("darnet_stream_tick", in.Trace)
		root.Segment("darnet_stage_queue_dwell", in.At, p.cfg.Now().Sub(in.At))
	}
	defer root.End()

	// Frame-skip hysteresis on the queue depth observed at processing time.
	d := p.depth.Load()
	if p.skipping.Load() {
		if d <= int64(p.cfg.ReleaseDepth) {
			p.skipping.Store(false)
			gSkipping.Add(-1)
		}
	} else if p.cfg.FrameSkipMax > 0 && d >= int64(p.cfg.EngageDepth) {
		p.skipping.Store(true)
		gSkipping.Add(1)
	}
	skip := false
	if in.Frame != nil {
		p.frames.Add(1)
		mFrames.Inc()
		if p.skipping.Load() && *skipStreak < p.cfg.FrameSkipMax {
			skip = true
		}
	}

	clsSp := root.StartChild("darnet_stage_classify_tick")
	cls, skipped, err := tk.Tick(in.Sample, in.Frame, skip)
	clsSp.End()
	if in.Frame != nil {
		if skipped {
			*skipStreak++
			p.framesSkipped.Add(1)
			mFramesSkipped.Inc()
		} else {
			*skipStreak = 0
		}
	}
	if err != nil {
		p.tickErrors.Add(1)
		mTickErrors.Inc()
		return
	}
	if cls == nil {
		return
	}

	now := p.cfg.Now()
	p.decisions.Add(1)
	mDecisions.Inc()
	hAlertLatency.Observe(now.Sub(in.At).Seconds())

	alertSp := root.StartChild("darnet_stage_alert")
	p.alertMu.Lock()
	ev := p.alert.observe(now, cls)
	p.alertMu.Unlock()
	switch ev {
	case core.AlertRaised:
		p.alertsRaised.Add(1)
		mAlertsRaised.Inc()
		gAlertActive.Add(1)
	case core.AlertCleared:
		p.alertsCleared.Add(1)
		mAlertsCleared.Inc()
		gAlertActive.Add(-1)
	}
	if ev != core.AlertNone && p.cfg.OnAlert != nil {
		p.cfg.OnAlert(p.agentID, ev, cls)
	}
	if p.cfg.OnDecision != nil {
		p.cfg.OnDecision(p.agentID, cls)
	}
	alertSp.End()
}

// watchdog restarts the worker when the stage stops making progress: either
// a tick has been in flight past StallTimeout (wedged worker) or work is
// queued and nothing has completed within the deadline (lost worker).
func (p *Pipeline) watchdog() {
	defer p.wg.Done()
	pprof.Do(context.Background(), pprof.Labels("darnet_agent", p.agentID, "darnet_stage", "stream_watchdog"), func(context.Context) {
		t := time.NewTicker(p.cfg.WatchdogPoll)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.checkStall()
			}
		}
	})
}

func (p *Pipeline) checkStall() {
	now := p.cfg.Now().UnixNano()
	deadline := p.cfg.StallTimeout.Nanoseconds()
	busy := p.busySince.Load()
	wedged := busy != 0 && now-busy > deadline
	starved := p.depth.Load() > 0 && now-p.lastProgress.Load() > deadline && busy == 0
	if !wedged && !starved {
		return
	}
	tk, err := p.newTicker()
	if err != nil {
		p.tickErrors.Add(1)
		mTickErrors.Inc()
		return // retry on the next poll
	}
	gen := p.gen.Add(1) // supersede the wedged worker; it exits on next wake
	p.busySince.Store(0)
	p.lastProgress.Store(now)
	p.lastRestart.Store(now)
	p.restarts.Add(1)
	mWatchdogRestarts.Inc()
	p.wg.Add(1)
	go p.worker(gen, tk)
}

// AlertActive reports whether this pipeline currently has a raised alert.
func (p *Pipeline) AlertActive() bool {
	p.alertMu.Lock()
	defer p.alertMu.Unlock()
	return p.alert.active
}

// Skipping reports whether frame-skip degradation is currently engaged.
func (p *Pipeline) Skipping() bool { return p.skipping.Load() }

// Stats snapshots the pipeline's counters.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Enqueued:      p.enqueued.Load(),
		ShedReadings:  p.shedReadings.Load(),
		Depth:         p.depth.Load(),
		MaxDepth:      p.maxDepth.Load(),
		Frames:        p.frames.Load(),
		FramesSkipped: p.framesSkipped.Load(),
		Decisions:     p.decisions.Load(),
		TickErrors:    p.tickErrors.Load(),
		Restarts:      p.restarts.Load(),
		AlertsRaised:  p.alertsRaised.Load(),
		AlertsCleared: p.alertsCleared.Load(),
	}
}

// Shutdown stops the pipeline and reaps every goroutine it ever spawned —
// the live worker, the watchdog, and any superseded worker still draining.
// Idempotent; blocks until all have exited.
func (p *Pipeline) Shutdown() {
	p.stopOnce.Do(func() {
		p.stopped.Store(true)
		close(p.stop)
	})
	p.wg.Wait()
}

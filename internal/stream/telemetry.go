package stream

import "darnet/internal/telemetry"

// Streaming-pipeline metrics. The robustness contract of this package is
// "overload is bounded and counted, never silent": every shed reading,
// skipped frame, dropped partial sample, watchdog restart, and recovered
// panic lands in one of these series.
var (
	mReadingsShed    = telemetry.NewCounter("darnet_stream_readings_shed_total", "readings dropped because the classify queue was at capacity")
	mReadingsIgnored = telemetry.NewCounter("darnet_stream_readings_ignored_total", "readings on sensor channels the streaming assembler does not classify")
	mPartialDropped  = telemetry.NewCounter("darnet_stream_partial_samples_dropped_total", "incomplete IMU samples evicted from the assembler's bounded pending set")

	mFrames        = telemetry.NewCounter("darnet_stream_frames_total", "camera frames entering the classify stage")
	mFramesSkipped = telemetry.NewCounter("darnet_stream_frames_skipped_total", "frames that reused the previous CNN distribution under frame-skip degradation")
	mDecisions     = telemetry.NewCounter("darnet_stream_decisions_total", "completed-window classifications produced by the pipeline")
	mTickErrors    = telemetry.NewCounter("darnet_stream_tick_errors_total", "classify ticks aborted by a model or validation error")
	mTickPanics    = telemetry.NewCounter("darnet_stream_tick_panics_total", "classify ticks that panicked and were recovered by the worker")

	mWatchdogRestarts = telemetry.NewCounter("darnet_stream_watchdog_restarts_total", "stage workers restarted by the watchdog after a progress stall")
	mStaleReoffers    = telemetry.NewCounter("darnet_stream_stale_reoffers_total", "inputs re-queued by a superseded worker generation on exit")

	mAlertsRaised  = telemetry.NewCounter("darnet_stream_alerts_raised_total", "streaming alerts raised after sustained distracted evidence")
	mAlertsCleared = telemetry.NewCounter("darnet_stream_alerts_cleared_total", "streaming alerts cleared after sustained normal evidence")

	gQueueDepth  = telemetry.NewGauge("darnet_stream_queue_depth", "classify work items queued across all agent pipelines")
	gSkipping    = telemetry.NewGauge("darnet_stream_frame_skip_engaged", "number of agent pipelines currently in frame-skip degradation")
	gAlertActive = telemetry.NewGauge("darnet_stream_alert_active", "number of agent pipelines with a raised alert")

	hAlertLatency = telemetry.NewHistogram("darnet_stream_alert_latency_seconds", "admission-to-decision latency of completed windows: how stale the alert state runs under load", nil)
)

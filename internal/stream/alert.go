package stream

import (
	"fmt"
	"time"

	"darnet/internal/core"
)

// AlertConfig parameterizes the streaming alert state machine. It debounces
// on *evidence*, not class labels: the distracted score of a classification
// is 1 − P(normal), discounted when the classification was degraded, so a
// flickering argmax between two distracted classes cannot flap the alert and
// a low-confidence single-modality window counts for less.
//
// Hysteresis is double: a score band (enter above Enter, exit below Exit,
// Enter > Exit) and a dwell time (the score must stay on the far side of the
// threshold for Dwell before the state flips). Both must be crossed, so
// alerts are flap-free by construction.
type AlertConfig struct {
	// NormalClass is the class index considered non-distracted.
	NormalClass int
	// Enter raises the alert once the distracted score has been ≥ Enter for
	// Dwell. Default 0.6.
	Enter float64
	// Exit clears the alert once the score has been ≤ Exit for Dwell.
	// Default 0.4.
	Exit float64
	// Dwell is the minimum sustained time on the far side of a threshold
	// before the state flips. Zero flips on the first qualifying window.
	Dwell time.Duration
}

func (c *AlertConfig) fillDefaults() {
	if c.Enter == 0 {
		c.Enter = 0.6
	}
	if c.Exit == 0 {
		c.Exit = 0.4
	}
}

func (c *AlertConfig) validate() error {
	if c.NormalClass < 0 {
		return fmt.Errorf("stream: negative normal class %d", c.NormalClass)
	}
	if c.Enter <= c.Exit {
		return fmt.Errorf("stream: alert enter threshold %v must exceed exit threshold %v (hysteresis band)", c.Enter, c.Exit)
	}
	if c.Dwell < 0 {
		return fmt.Errorf("stream: negative alert dwell %v", c.Dwell)
	}
	return nil
}

// alertFSM is the per-pipeline alert state machine. Not safe for concurrent
// use; the pipeline serializes Observe under its alert mutex so the state
// survives watchdog worker restarts without double-raising.
type alertFSM struct {
	cfg        AlertConfig
	active     bool
	enterSince time.Time // first observation of a qualifying enter score
	exitSince  time.Time // first observation of a qualifying exit score
}

// score maps a classification onto distracted evidence in [0, 1].
func (a *alertFSM) score(c *core.Classification) float64 {
	if a.cfg.NormalClass >= len(c.Probs) {
		return 0 // engine with fewer classes than configured: never alert
	}
	s := 1 - c.Probs[a.cfg.NormalClass]
	if c.Degraded() {
		s *= core.DegradedConfidenceDiscount
	}
	return s
}

// observe feeds one completed-window classification and returns the alert
// transition it caused, if any.
func (a *alertFSM) observe(now time.Time, c *core.Classification) core.AlertEvent {
	s := a.score(c)
	if !a.active {
		if s >= a.cfg.Enter {
			if a.enterSince.IsZero() {
				a.enterSince = now
			}
			if now.Sub(a.enterSince) >= a.cfg.Dwell {
				a.active = true
				a.enterSince = time.Time{}
				a.exitSince = time.Time{}
				return core.AlertRaised
			}
		} else {
			a.enterSince = time.Time{}
		}
		return core.AlertNone
	}
	if s <= a.cfg.Exit {
		if a.exitSince.IsZero() {
			a.exitSince = now
		}
		if now.Sub(a.exitSince) >= a.cfg.Dwell {
			a.active = false
			a.enterSince = time.Time{}
			a.exitSince = time.Time{}
			return core.AlertCleared
		}
	} else {
		a.exitSince = time.Time{}
	}
	return core.AlertNone
}

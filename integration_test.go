package darnet

// Integration test covering the full system path the paper's Figure 2
// describes: collection agents stream sensor data to the centralized
// controller over a real TCP connection, the controller keeps the agent
// clock synchronized and aligns the streams, and the aligned windows are
// classified by the IMU sequence model.

import (
	"math/rand"
	"net"
	"sync"
	"testing"

	"darnet/internal/collect"
	"darnet/internal/imu"
	"darnet/internal/nn"
	"darnet/internal/rnn"
	"darnet/internal/synth"
	"darnet/internal/tensor"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

func TestCollectionToAnalyticsPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(33))

	// Train a compact IMU classifier.
	dcfg := synth.DefaultConfig()
	dcfg.Scale = 0.008
	ds, err := synth.GenerateTable1(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := imu.FitStats(ds.IMUWindows())
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]*tensor.Tensor, ds.Len())
	for i, w := range ds.IMUWindows() {
		seqs[i] = stats.Normalize(w)
	}
	cls, err := rnn.NewClassifier("imu", rng, rnn.Config{
		Input: imu.FeatureDim, Hidden: 16, Layers: 1, Classes: synth.NumIMUClasses,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cls.Train(nn.NewAdam(0.005), rng, seqs, ds.IMULabels(), rnn.TrainConfig{
		Epochs: 5, BatchSize: 16, ClipNorm: 5,
	}); err != nil {
		t.Fatal(err)
	}

	// Stream a two-segment session (texting, then normal) through the
	// middleware over loopback TCP with simulated time.
	gen := synth.DefaultIMUGen()
	gen.TransitionProb = 0
	gen.RandomOrientationProb = 0
	var session []imu.Sample
	script := []synth.Class{synth.Texting, synth.NormalDriving}
	for _, c := range script {
		for k := 0; k < 2; k++ { // 2 windows per segment
			session = append(session, synth.GenerateWindow(rng, c, gen).Samples...)
		}
	}

	mt := collect.NewManualTime(10_000)
	db := tsdb.New()
	ctrl := collect.NewController(db, mt.Now)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if err := ctrl.ServeConn(wire.NewConn(conn)); err != nil {
			t.Errorf("controller: %v", err)
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	clock := collect.NewDriftClock(mt.Now, 0.003)
	cursor := 0
	agent, err := collect.NewAgent(collect.AgentConfig{
		ID: "phone", Modality: "imu", PollPeriodMS: 250,
	}, clock, collect.IMUSensors(func() imu.Sample { return session[cursor] }), wire.NewConn(conn))
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Hello(); err != nil {
		t.Fatal(err)
	}
	for cursor = 0; cursor < len(session); cursor++ {
		agent.Poll()
		mt.Advance(250)
		if cursor%20 == 19 {
			if err := agent.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := agent.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	wg.Wait()

	// Assemble windows through the controller's engine bridge and classify.
	windows, err := ctrl.AssembleIMUWindows("phone", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) < 4 {
		t.Fatalf("assembled only %d windows", len(windows))
	}
	_ = db

	correct := 0
	for i, w := range windows {
		pred, err := cls.Predict(stats.Normalize(w))
		if err != nil {
			t.Fatal(err)
		}
		wantClass := script[min(i/2, len(script)-1)]
		if pred == wantClass.IMUClass() {
			correct++
		}
	}
	// The streamed session must be classified mostly correctly end to end.
	if float64(correct)/float64(len(windows)) < 0.75 {
		t.Fatalf("pipeline classified %d/%d windows correctly", correct, len(windows))
	}
}

// Package darnet is a from-scratch Go reproduction of "DarNet: A Deep
// Learning Solution for Distracted Driving Detection" (Streiffer,
// Raghavendra, Benson, Srivatsa — Middleware Industry '17).
//
// DarNet detects and classifies distracted driving behaviour by fusing two
// sensing modalities: dashcam frames, classified per-frame by a
// convolutional neural network, and IMU windows from the driver's phone,
// classified by a deep bidirectional LSTM, with a per-class Bayesian Network
// combining the two probability distributions into a single inference. A
// privacy extension trains "denoising CNNs" on down-sampled frames by
// unsupervised distillation against the full-resolution model.
//
// The package exposes four areas:
//
//   - Synthetic datasets (GenerateDataset, Generate18ClassDataset) that stand
//     in for the paper's private datasets, engineered to reproduce the same
//     modality structure (see DESIGN.md, "Substitutions").
//   - The analytics engine (TrainEngine, (*Engine).Evaluate,
//     (*Engine).Classify): CNN + RNN + SVM + Bayesian Network ensemble.
//   - The privacy path (Distort, Distill, Router): distortion levels, tagged
//     routing, and teacher-student dCNN training.
//   - The collection middleware (NewAgent, NewController, wire protocol):
//     sensor polling, clock synchronization, alignment, and smoothing.
//
// Everything is implemented with the Go standard library only: the tensor,
// neural-network, recurrent-network, and SVM substrates live in internal
// packages and are re-exported here where they form part of the public
// surface.
package darnet

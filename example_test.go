package darnet_test

import (
	"fmt"
	"net"
	"time"

	"darnet"
)

// ClassNames enumerates the paper's six driver behaviour classes.
func ExampleClassNames() {
	for i, name := range darnet.ClassNames() {
		fmt.Printf("%d %s\n", i+1, name)
	}
	// Output:
	// 1 Normal Driving
	// 2 Talking
	// 3 Texting
	// 4 Eating/Drinking
	// 5 Hair and Makeup
	// 6 Reaching
}

// The alerter debounces the per-window classification stream into the
// paper's real-time driver alerts: two consecutive distracted windows raise,
// two consecutive normal windows clear.
func ExampleAlerter() {
	alerter, err := darnet.NewAlerter(int(darnet.NormalDriving), 2, 2)
	if err != nil {
		panic(err)
	}
	stream := []darnet.Class{
		darnet.NormalDriving,
		darnet.Texting, // one window: no alert yet
		darnet.Texting, // second consecutive: raise
		darnet.NormalDriving,
		darnet.NormalDriving, // second consecutive: clear
	}
	for _, c := range stream {
		if ev := alerter.Observe(int(c)); ev != darnet.AlertNone {
			fmt.Printf("%v -> alert %v\n", c, ev)
		}
	}
	// Output:
	// Texting -> alert raised
	// Normal Driving -> alert cleared
}

// Example_collectionPipeline sketches the full middleware wiring: a
// controller accepting TCP connections, an IMU agent streaming through a
// managed runner, and the controller's engine bridge assembling windows.
// (No Output comment: this example is compile-checked but not executed —
// it needs a live TCP listener.)
func Example_collectionPipeline() {
	db := darnet.NewTSDB()
	now := func() int64 { return time.Now().UnixMilli() }
	ctrl := darnet.NewController(db, now)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_ = ctrl.ServeConn(darnet.NewWireConn(conn))
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		panic(err)
	}
	clock := darnet.NewDriftClock(now, 0.002)
	var current darnet.IMUSample
	agent, err := darnet.NewAgent(darnet.AgentConfig{
		ID: "phone", Modality: "imu", PollPeriodMS: 25, LatencyComp: 2,
	}, clock, darnet.IMUSensors(func() darnet.IMUSample { return current }), darnet.NewWireConn(raw))
	if err != nil {
		panic(err)
	}
	runner, err := darnet.StartAgentRunner(agent, 500*time.Millisecond, func() {
		current = darnet.IMUSample{} // read the real sensor here
	})
	if err != nil {
		panic(err)
	}
	defer runner.Shutdown()

	// Later: align the stored streams into classifier-ready windows.
	windows, err := ctrl.AssembleIMUWindows("phone", 3)
	if err == nil {
		fmt.Println(len(windows))
	}
}

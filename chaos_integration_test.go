package darnet

// Chaos integration test: the full agent → controller → engine pipeline under
// injected transport faults. A collection agent streams over loopback TCP
// through a fault.Transport that hard-partitions the first two connections on
// a fixed write schedule and duplicates frames on the third; the runner must
// survive every partition via backoff reconnect, the controller must store
// zero duplicate readings despite replayed and duplicated batches, and the
// engine must keep classifying — degraded to CNN-only — while the IMU stream
// is down, with the recovery counters observing each event.

import (
	"math"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"darnet/internal/collect"
	"darnet/internal/core"
	"darnet/internal/fault"
	"darnet/internal/imu"
	"darnet/internal/telemetry"
	"darnet/internal/tensor"
	"darnet/internal/tsdb"
	"darnet/internal/wire"
)

// The acceptance counters live inside the packages under test; the registry
// hands back the same instance for a given name, so the test reads them
// through their registered names.
var (
	cReconnects = telemetry.NewCounter("darnet_collect_reconnects_total", "agent reconnections completed after a transport failure")
	cDeduped    = telemetry.NewCounter("darnet_collect_batches_deduped_total", "replayed batches dropped by sequence-number dedupe (at-least-once delivery)")
	cDegraded   = telemetry.NewCounter("darnet_core_degraded_classify_total", "classifications served in degraded single-modality mode because a modality was absent")
)

// chaosTinyData builds a minimal learnable multi-modal dataset (bright block
// per class in the frames, accelerometer offset per class in the windows).
func chaosTinyData(rng *rand.Rand, n, w, h, classes int) *core.Data {
	frames := tensor.New(n, w*h)
	labels := make([]int, n)
	windows := make([]imu.Window, n)
	classMap := make([]int, classes)
	for c := range classMap {
		classMap[c] = c
	}
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		row := frames.Row(i)
		for j := range row {
			row[j] = rng.Float64() * 0.1
		}
		x0 := (c * w) / classes
		for y := 0; y < h; y++ {
			for dx := 0; dx < 3 && x0+dx < w; dx++ {
				row[y*w+x0+dx] = 0.9
			}
		}
		samples := make([]imu.Sample, imu.WindowSize)
		for ts := range samples {
			samples[ts].TimestampMillis = int64(ts * 250)
			samples[ts].Accel[0] = float64(c)*3 + rng.NormFloat64()*0.2
			samples[ts].Gravity[1] = 9.8
			samples[ts].Rotation[3] = 1
		}
		windows[i] = imu.Window{Samples: samples}
	}
	return &core.Data{
		Frames: frames, Windows: windows, Labels: labels, IMULabels: labels,
		ImgW: w, ImgH: h, Classes: classes, IMUClasses: classes, ClassMap: classMap,
	}
}

func TestChaosPipelineSurvivesPartitionsWithoutDuplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos integration test skipped in -short mode")
	}
	reconBefore := cReconnects.Value()
	dedupBefore := cDeduped.Value()
	degradedBefore := cDegraded.Value()

	// --- Controller over loopback TCP --------------------------------------
	db := tsdb.New()
	ctrl := collect.NewController(db, func() int64 { return time.Now().UnixMilli() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				// Chaos sessions die by design (partitions, duplicated
				// handshakes); the assertions below run on the stored data.
				//lint:ignore errdrop chaos sessions end in injected faults
				ctrl.ServeConn(wire.NewConn(conn))
			}()
		}
	}()

	// --- Dialer with a per-connection fault schedule ------------------------
	// Connections 1 and 2 hard-partition after a fixed number of frames; the
	// later ones duplicate frames, turning delivered batches into replays the
	// controller must dedupe.
	var dials atomic.Int64
	dialer := func() (*wire.Conn, error) {
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		n := dials.Add(1)
		cfg := fault.Config{Seed: 100 + n}
		if n <= 2 {
			cfg.PartitionAfterWrites = []int{6}
		} else {
			cfg.DupRate = 0.4
		}
		return wire.NewConn(fault.NewTransport(raw, cfg)), nil
	}

	// --- Agent + fault-tolerant runner --------------------------------------
	conn, err := dialer()
	if err != nil {
		t.Fatal(err)
	}
	clock := collect.NewDriftClock(func() int64 { return time.Now().UnixMilli() }, 0)
	var tick int64
	sensors := []collect.Sensor{collect.SensorFunc{SensorName: "s", ReadFunc: func() []float64 {
		tick++
		return []float64{float64(tick)}
	}}}
	agent, err := collect.NewAgent(collect.AgentConfig{
		ID: "chaos", Modality: "imu", PollPeriodMS: 5,
		AckTimeout: 500 * time.Millisecond, MaxSpill: 10_000,
	}, clock, sensors, conn)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := collect.StartRunnerConfig(agent, collect.RunnerConfig{
		FlushEvery:  15 * time.Millisecond,
		Dialer:      dialer,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  30 * time.Millisecond,
		MaxAttempts: -1, // chaos keeps knocking connections over; never give up
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Run until both scheduled partitions have been survived and data has
	// flowed on a post-partition session.
	deadline := time.After(30 * time.Second)
	for runner.Reconnects() < 2 {
		select {
		case <-deadline:
			t.Fatalf("only %d reconnects before deadline (err=%v)", runner.Reconnects(), runner.Err())
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	series := collect.SeriesName("chaos", "s") + "[0]"
	highWater := db.Len(series)
	deadline = time.After(30 * time.Second)
	for db.Len(series) <= highWater {
		select {
		case <-deadline:
			t.Fatal("no new readings stored after the second reconnect")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if err := runner.Shutdown(); err != nil {
		t.Fatalf("shutdown after chaos: %v", err)
	}

	if got := runner.Reconnects(); got < 2 {
		t.Fatalf("survived %d partitions, want >= 2", got)
	}
	if got := cReconnects.Value() - reconBefore; got < 2 {
		t.Fatalf("darnet_collect_reconnects_total moved by %d, want >= 2", got)
	}

	// --- Explicit replay: a stored batch retransmitted after reconnect ------
	st, ok := ctrl.AgentStats("chaos")
	if !ok {
		t.Fatal("agent unknown to controller after the run")
	}
	if st.LastSeq == 0 {
		t.Fatal("no sequenced batches stored during the run")
	}
	rowsBefore := db.Len(series)
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	replay := wire.NewConn(raw)
	if err := replay.Send(&wire.Hello{AgentID: "chaos", Modality: "imu", PeriodMillis: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := replay.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := replay.Send(&wire.SampleBatch{AgentID: "chaos", Seq: st.LastSeq, Readings: []wire.Reading{
		{TimestampMillis: 1, Sensor: "s", Values: []float64{-1}},
	}}); err != nil {
		t.Fatal(err)
	}
	if msg, err := replay.Recv(); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(*wire.Ack); !ok {
		t.Fatalf("replay answered with %T, want ack", msg)
	}
	raw.Close()
	if got := db.Len(series); got != rowsBefore {
		t.Fatalf("replayed batch grew the store from %d to %d rows", rowsBefore, got)
	}

	// --- Zero duplicates stored ---------------------------------------------
	// The sensor emits a strictly increasing value, so any replayed or
	// duplicated batch that slipped past the dedupe would store the same
	// value twice.
	pts := db.Range(series, math.MinInt64, math.MaxInt64)
	if len(pts) == 0 {
		t.Fatal("no readings stored at all")
	}
	seen := make(map[float64]int64, len(pts))
	for _, p := range pts {
		if prev, dup := seen[p.Value]; dup {
			t.Fatalf("reading %v stored twice (t=%d and t=%d): duplicate slipped past dedupe", p.Value, prev, p.TimestampMillis)
		}
		seen[p.Value] = p.TimestampMillis
	}
	if got := cDeduped.Value() - dedupBefore; got < 1 {
		t.Fatalf("darnet_collect_batches_deduped_total moved by %d, want >= 1", got)
	}
	if st2, _ := ctrl.AgentStats("chaos"); st2.Sessions < 3 {
		t.Fatalf("sessions = %d, want >= 3 (initial + 2 resumes)", st2.Sessions)
	}

	// --- Degraded classification while the IMU stream is down ---------------
	// During a partition the engine has frames but no IMU window; it must
	// still classify (CNN-only, discounted confidence) and the alerter must
	// still fire on the distracted decision.
	rng := rand.New(rand.NewSource(11))
	train := chaosTinyData(rng, 60, 16, 16, 3)
	cfg := core.DefaultTrainConfig()
	cfg.CNNEpochs = 8
	cfg.RNNEpochs = 3
	cfg.RNNHidden = 8
	cfg.RNNLayers = 1
	cfg.SVMEpochs = 5
	eng, err := core.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find a frame the healthy fused path classifies as distracted (class 1).
	var distracted []float64
	for i := 0; i < train.Frames.Dim(0); i++ {
		if train.Labels[i] == 1 {
			distracted = train.Frames.Row(i)
			break
		}
	}
	c, err := eng.Classify(distracted, imu.Window{})
	if err != nil {
		t.Fatalf("classify with partitioned IMU stream: %v", err)
	}
	if c.Mode != core.ModeCNNOnly || !c.Degraded() {
		t.Fatalf("mode = %v, want cnn-only degraded", c.Mode)
	}
	if c.Confidence >= c.Probs[c.Class] {
		t.Fatalf("degraded confidence %v not discounted below posterior peak %v", c.Confidence, c.Probs[c.Class])
	}
	if got := cDegraded.Value() - degradedBefore; got < 1 {
		t.Fatalf("darnet_core_degraded_classify_total moved by %d, want >= 1", got)
	}
	alerter, err := core.NewAlerter(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Class == 0 {
		t.Fatalf("degraded classification lost the distracted decision (class 0)")
	}
	if got := alerter.Observe(c.Class); got != core.AlertRaised {
		t.Fatalf("alert event = %v, want raised: degraded mode must keep alerting", got)
	}
}
